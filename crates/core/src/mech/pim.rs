//! The Planar Isotropic Mechanism (PIM), adapted to policy graphs.
//!
//! PIM (Xiao & Xiong, CCS'15) is the optimal-rate mechanism for δ-Location
//! Set Privacy. Its noise is the **K-norm mechanism** instantiated with the
//! *sensitivity hull* `K = conv{ s_i − s_j }` of the protected location set:
//! the released point has density `∝ exp(−ε·‖z − s‖_K)`.
//!
//! **Adaptation to PGLP.** The protected set becomes the policy component of
//! the true location. For any policy edge `(s, s′)` the difference `s − s′`
//! lies in `K` by construction, so `‖s − s′‖_K ≤ 1` and the density ratio is
//! bounded by `e^ε` — exactly {ε,G}-location privacy, for *every* policy
//! graph. For a complete-graph component (a δ-location set, `G2`) this
//! coincides with the original PIM, which is how Theorem 2.2's relationship
//! is exercised in the test suite.
//!
//! **Sampling.** In 2-D, `z = r·u` with `u` uniform in `K` and
//! `r ~ Γ(3, 1/ε)` has density `∝ e^{−ε‖z‖_K}` (the standard K-norm
//! construction). The *isotropic transform* step of the original paper —
//! whitening `K` by `Σ^{-1/2}` before sampling and mapping back — leaves the
//! distribution unchanged (it matters for the error lower-bound analysis,
//! not for privacy), and is kept behind a flag as an ablation (`bench
//! pim_ablation` measures both paths).
//!
//! **Degenerate hulls.** Singleton components release exactly; collinear
//! components reduce to a 1-D Laplace along the segment direction.
//!
//! Hull construction uses `conv(A − A) = conv(conv(A) − conv(A))`: the
//! position hull is computed first, and the difference set is expanded only
//! over its (few) vertices, keeping per-component preparation cheap even for
//! large components. Use [`PlanarIsotropic::prepared`] to amortise
//! preparation across calls when sweeping a fixed policy.

use crate::error::PglpError;
use crate::mech::noise::{gamma_int, laplace_1d};
use crate::mech::{validate, Mechanism};
use crate::policy::LocationPolicyGraph;
use panda_geo::polygon::HullShape;
use panda_geo::{difference_set, CellId, ConvexPolygon, Mat2, Point};
use rand::RngCore;

/// Per-component prepared K-norm sampler.
#[derive(Debug, Clone)]
enum ComponentKind {
    /// Singleton component: release exactly.
    Exact,
    /// Collinear positions: 1-D Laplace along `half_extent` (= the hull
    /// segment's positive endpoint).
    Line { half_extent: Point },
    /// Proper 2-D sensitivity hull.
    Hull {
        k: ConvexPolygon,
        /// `(T, T⁻¹, T(K))` for the isotropic-transform sampling path.
        iso: Option<(Mat2, Mat2, ConvexPolygon)>,
    },
}

#[derive(Debug, Clone)]
struct PimCache {
    /// The component/distance index of the policy the hulls were prepared
    /// for. Cache validity is **identity** of the component structure
    /// (`Arc::ptr_eq`), not just matching counts — two different policies
    /// can share cell and component counts while their components have
    /// different shapes, which would silently miscalibrate the noise.
    prepared_for: std::sync::Arc<panda_graph::distances::ComponentDistances>,
    /// Indexed by policy component id; `None` until that component is used.
    per_component: Vec<ComponentKind>,
}

/// Planar Isotropic Mechanism over policy components.
#[derive(Debug, Clone, Default)]
pub struct PlanarIsotropic {
    use_isotropic_transform: bool,
    cache: Option<PimCache>,
}

impl PlanarIsotropic {
    /// A PIM that samples directly in the sensitivity hull (no whitening).
    pub fn new() -> Self {
        PlanarIsotropic {
            use_isotropic_transform: false,
            cache: None,
        }
    }

    /// A PIM that routes sampling through the isotropic transform, like the
    /// original CCS'15 construction. Distributionally identical to
    /// [`PlanarIsotropic::new`]; kept for the ablation benchmarks.
    pub fn with_isotropic_transform() -> Self {
        PlanarIsotropic {
            use_isotropic_transform: true,
            cache: None,
        }
    }

    /// Precomputes the sensitivity hull of **every** component of `policy`,
    /// so subsequent [`Mechanism::perturb`] calls are O(sample + snap).
    ///
    /// The returned mechanism is bound to the given policy's component
    /// structure (shared with clones of that policy); feeding it any other
    /// policy is detected and falls back to on-the-fly preparation.
    pub fn prepared(policy: &LocationPolicyGraph, use_isotropic_transform: bool) -> Self {
        let n_components = policy.n_components();
        let mut per_component: Vec<Option<ComponentKind>> = vec![None; n_components as usize];
        for cell in policy.grid().cells() {
            let comp = policy.component_of(cell) as usize;
            if per_component[comp].is_none() {
                per_component[comp] = Some(Self::prepare_component(
                    policy,
                    cell,
                    use_isotropic_transform,
                ));
            }
        }
        PlanarIsotropic {
            use_isotropic_transform,
            cache: Some(PimCache {
                prepared_for: std::sync::Arc::clone(policy.distance_index()),
                per_component: per_component
                    .into_iter()
                    .map(|c| c.expect("all components visited"))
                    .collect(),
            }),
        }
    }

    fn prepare_component(
        policy: &LocationPolicyGraph,
        member: CellId,
        use_isotropic_transform: bool,
    ) -> ComponentKind {
        let cells = policy.component_slice(member);
        if cells.len() <= 1 {
            return ComponentKind::Exact;
        }
        let grid = policy.grid();
        let positions: Vec<Point> = cells.iter().map(|&c| grid.center(c)).collect();
        // conv(A − A) via the position hull's vertices only.
        let position_hull: Vec<Point> = match ConvexPolygon::hull_of(&positions) {
            HullShape::Point(_) => unreachable!("distinct cells have distinct centres"),
            HullShape::Segment(a, b) => vec![a, b],
            HullShape::Polygon(p) => p.vertices().to_vec(),
        };
        match ConvexPolygon::hull_of(&difference_set(&position_hull)) {
            HullShape::Point(_) => ComponentKind::Exact,
            HullShape::Segment(a, b) => {
                // Symmetric segment [−e, e]; pick the positive endpoint.
                debug_assert!((a + b).norm() < 1e-6 * (1.0 + a.norm()));
                ComponentKind::Line { half_extent: b }
            }
            HullShape::Polygon(k) => {
                let iso = if use_isotropic_transform {
                    let cov = k.covariance();
                    cov.inv_sqrt().and_then(|t| {
                        let t_inv = t.inverse()?;
                        let k_iso = k.transform(&t)?;
                        Some((t, t_inv, k_iso))
                    })
                } else {
                    None
                };
                ComponentKind::Hull { k, iso }
            }
        }
    }

    /// Samples a K-norm noise vector with parameter `eps` for the prepared
    /// component.
    fn sample_noise(kind: &ComponentKind, eps: f64, rng: &mut dyn RngCore) -> Point {
        match kind {
            ComponentKind::Exact => Point::ORIGIN,
            ComponentKind::Line { half_extent } => {
                // Density ∝ e^{−ε|t|} along the segment direction.
                *half_extent * laplace_1d(rng, 1.0 / eps)
            }
            ComponentKind::Hull { k, iso } => {
                let r = gamma_int(rng, 3, 1.0 / eps);
                match iso {
                    // Whitened path: sample in T(K), map back through T⁻¹.
                    Some((_, t_inv, k_iso)) => {
                        let u = k_iso.sample_uniform(rng);
                        t_inv.apply(u * r)
                    }
                    None => {
                        let u = k.sample_uniform(rng);
                        u * r
                    }
                }
            }
        }
    }

    fn snap(policy: &LocationPolicyGraph, cells: &[CellId], y: Point) -> CellId {
        let grid = policy.grid();
        let mut best = cells[0];
        let mut best_d = grid.center(best).distance_sq(y);
        for &c in &cells[1..] {
            let d = grid.center(c).distance_sq(y);
            if d < best_d {
                best = c;
                best_d = d;
            }
        }
        best
    }

    fn component_kind(&self, policy: &LocationPolicyGraph, true_loc: CellId) -> ComponentKind {
        if let Some(cache) = &self.cache {
            if std::sync::Arc::ptr_eq(&cache.prepared_for, policy.distance_index()) {
                return cache.per_component[policy.component_of(true_loc) as usize].clone();
            }
        }
        Self::prepare_component(policy, true_loc, self.use_isotropic_transform)
    }
}

impl Mechanism for PlanarIsotropic {
    fn name(&self) -> &'static str {
        if self.use_isotropic_transform {
            "pim-isotropic"
        } else {
            "pim"
        }
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        let kind = self.component_kind(policy, true_loc);
        if matches!(kind, ComponentKind::Exact) {
            return Ok(true_loc);
        }
        let cells = policy.component_slice(true_loc);
        let noise = Self::sample_noise(&kind, eps, rng);
        let y = policy.grid().center(true_loc) + noise;
        Ok(Self::snap(policy, cells, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(6, 6, 100.0)
    }

    #[test]
    fn isolated_cells_released_exactly() {
        let p = LocationPolicyGraph::isolated(grid());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            PlanarIsotropic::new()
                .perturb(&p, 1.0, CellId(9), &mut rng)
                .unwrap(),
            CellId(9)
        );
    }

    #[test]
    fn output_stays_in_component() {
        let p = LocationPolicyGraph::partition(grid(), 3, 3);
        let pim = PlanarIsotropic::new();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..300 {
            let z = pim.perturb(&p, 0.5, CellId(0), &mut rng).unwrap();
            assert!(p.same_component(CellId(0), z));
        }
    }

    #[test]
    fn collinear_component_uses_line_noise() {
        // A 1×6 grid with a complete policy: all centres collinear.
        let g = GridMap::new(6, 1, 100.0);
        let p = LocationPolicyGraph::complete(g);
        let pim = PlanarIsotropic::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let z = pim.perturb(&p, 0.8, CellId(2), &mut rng).unwrap();
            seen.insert(z);
        }
        assert!(seen.len() >= 3, "line noise must spread over the segment");
    }

    #[test]
    fn prepared_cache_rejects_different_policy_with_matching_counts() {
        // Two policies over a 6×1 grid, both with 6 cells and 4 components,
        // but different component shapes: A connects {0,1,2}, B connects
        // {3,4,5}. A count-based validity check confuses them; the identity
        // check must fall back to fresh preparation for B.
        let g = GridMap::new(6, 1, 100.0);
        let a = LocationPolicyGraph::isolated(g.clone())
            .with_edges(&[(CellId(0), CellId(1)), (CellId(1), CellId(2))]);
        let b = LocationPolicyGraph::isolated(g.clone())
            .with_edges(&[(CellId(3), CellId(4)), (CellId(4), CellId(5))]);
        assert_eq!(a.n_components(), b.n_components());
        assert_eq!(a.n_locations(), b.n_locations());

        let pim = PlanarIsotropic::prepared(&a, false);
        // Under A's stale cache, cell 3 looked isolated (exact release);
        // under B it sits in a 3-cell line and must receive noise.
        let mut rng = SmallRng::seed_from_u64(10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let z = pim.perturb(&b, 0.5, CellId(3), &mut rng).unwrap();
            assert!(b.same_component(CellId(3), z));
            seen.insert(z);
        }
        assert!(
            seen.len() >= 2,
            "stale hull cache: cell 3 released exactly under policy B"
        );
        // Clones of A share its component index: the cache stays valid.
        let a2 = a.clone();
        assert_eq!(
            pim.perturb(&a2, 0.5, CellId(5), &mut rng).unwrap(),
            CellId(5),
            "cell 5 is isolated in A; prepared cache must apply to clones"
        );
    }

    #[test]
    fn prepared_matches_unprepared_distribution() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let eps = 1.0;
        let s = CellId(0);
        const N: usize = 60_000;
        let census = |mech: &PlanarIsotropic, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..N {
                let z = mech.perturb(&p, eps, s, &mut rng).unwrap();
                *counts.entry(z).or_insert(0usize) += 1;
            }
            counts
        };
        let fresh = census(&PlanarIsotropic::new(), 4);
        let prepped = census(&PlanarIsotropic::prepared(&p, false), 5);
        for (cell, &n1) in &fresh {
            let n2 = *prepped.get(cell).unwrap_or(&0);
            let (f1, f2) = (n1 as f64 / N as f64, n2 as f64 / N as f64);
            assert!(
                (f1 - f2).abs() < 0.02,
                "cell {cell}: {f1} vs {f2} (prepared should match)"
            );
        }
    }

    #[test]
    fn isotropic_transform_is_distribution_preserving() {
        let p = LocationPolicyGraph::partition(grid(), 3, 2);
        let eps = 0.8;
        let s = CellId(1);
        const N: usize = 80_000;
        let census = |mech: &PlanarIsotropic, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..N {
                let z = mech.perturb(&p, eps, s, &mut rng).unwrap();
                *counts.entry(z).or_insert(0usize) += 1;
            }
            counts
        };
        let direct = census(&PlanarIsotropic::new(), 6);
        let iso = census(&PlanarIsotropic::with_isotropic_transform(), 7);
        for (cell, &n1) in &direct {
            let n2 = *iso.get(cell).unwrap_or(&0);
            let (f1, f2) = (n1 as f64 / N as f64, n2 as f64 / N as f64);
            assert!(
                (f1 - f2).abs() < 0.02,
                "cell {cell}: direct {f1} vs isotropic {f2}"
            );
        }
    }

    #[test]
    fn empirical_edge_ratio_respects_epsilon() {
        // Complete policy over a 2×2 grid = δ-location set of 4 cells:
        // the original PIM setting (Theorem 2.2).
        let p = LocationPolicyGraph::complete(GridMap::new(2, 2, 100.0));
        let pim = PlanarIsotropic::new();
        let eps = 1.0;
        const N: usize = 400_000;
        let mut rng = SmallRng::seed_from_u64(8);
        let census = |s: CellId, rng: &mut SmallRng| {
            let mut counts = [0usize; 4];
            for _ in 0..N {
                counts[pim.perturb(&p, eps, s, rng).unwrap().index()] += 1;
            }
            counts
        };
        let ca = census(CellId(0), &mut rng);
        let cb = census(CellId(1), &mut rng);
        for i in 0..4 {
            if ca[i] > 1000 && cb[i] > 1000 {
                let ratio = ca[i] as f64 / cb[i] as f64;
                assert!(
                    ratio <= eps.exp() * 1.25,
                    "output {i}: ratio {ratio} exceeds e^eps"
                );
            }
        }
    }

    #[test]
    fn error_decreases_with_epsilon() {
        let p = LocationPolicyGraph::partition(grid(), 3, 3);
        let pim = PlanarIsotropic::prepared(&p, false);
        let s = CellId(7);
        let mut rng = SmallRng::seed_from_u64(9);
        let mean_err = |eps: f64, rng: &mut SmallRng| {
            const N: usize = 4000;
            (0..N)
                .map(|_| {
                    let z = pim.perturb(&p, eps, s, rng).unwrap();
                    p.grid().distance(s, z)
                })
                .sum::<f64>()
                / N as f64
        };
        let coarse = mean_err(0.2, &mut rng);
        let fine = mean_err(5.0, &mut rng);
        assert!(fine < coarse, "{fine} !< {coarse}");
    }
}
