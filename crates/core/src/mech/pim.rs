//! The Planar Isotropic Mechanism (PIM), adapted to policy graphs.
//!
//! PIM (Xiao & Xiong, CCS'15) is the optimal-rate mechanism for δ-Location
//! Set Privacy. Its noise is the **K-norm mechanism** instantiated with the
//! *sensitivity hull* `K = conv{ s_i − s_j }` of the protected location set:
//! the released point has density `∝ exp(−ε·‖z − s‖_K)`.
//!
//! **Adaptation to PGLP.** The protected set becomes the policy component of
//! the true location. For any policy edge `(s, s′)` the difference `s − s′`
//! lies in `K` by construction, so `‖s − s′‖_K ≤ 1` and the density ratio is
//! bounded by `e^ε` — exactly {ε,G}-location privacy, for *every* policy
//! graph. For a complete-graph component (a δ-location set, `G2`) this
//! coincides with the original PIM, which is how Theorem 2.2's relationship
//! is exercised in the test suite.
//!
//! **Sampling.** In 2-D, `z = r·u` with `u` uniform in `K` and
//! `r ~ Γ(3, 1/ε)` has density `∝ e^{−ε‖z‖_K}` (the standard K-norm
//! construction). The *isotropic transform* step of the original paper —
//! whitening `K` by `Σ^{-1/2}` before sampling and mapping back — leaves the
//! distribution unchanged (it matters for the error lower-bound analysis,
//! not for privacy), and is kept behind a flag as an ablation (`bench
//! pim_ablation` measures both paths).
//!
//! **Degenerate hulls.** Singleton components release exactly; collinear
//! components reduce to a 1-D Laplace along the segment direction.
//!
//! Hull construction uses `conv(A − A) = conv(conv(A) − conv(A))`: the
//! position hull is computed first, and the difference set is expanded only
//! over its (few) vertices, keeping per-component preparation cheap even for
//! large components. Prepared hulls are cached **in the
//! [`PolicyIndex`]** — the one object owning all per-policy mechanism state
//! — so the bulk path ([`Mechanism::perturb_batch`]) prepares each
//! component once per index regardless of batch size, and a stale-cache
//! hazard (a hull prepared for one policy reused under another) is
//! impossible by construction.

use crate::error::PglpError;
use crate::index::PolicyIndex;
use crate::mech::noise::{gamma_int, laplace_1d};
use crate::mech::{validate, Mechanism};
use crate::policy::LocationPolicyGraph;
use panda_geo::polygon::HullShape;
use panda_geo::{difference_set, CellId, ConvexPolygon, Mat2, Point};
use rand::RngCore;

/// Per-component prepared K-norm sampler, cached by [`PolicyIndex`].
#[derive(Debug, Clone)]
pub(crate) enum PreparedHull {
    /// Singleton component: release exactly.
    Exact,
    /// Collinear positions: 1-D Laplace along `half_extent` (= the hull
    /// segment's positive endpoint).
    Line { half_extent: Point },
    /// Proper 2-D sensitivity hull.
    Hull {
        k: ConvexPolygon,
        /// `(T, T⁻¹, T(K))` for the isotropic-transform sampling path.
        iso: Option<(Mat2, Mat2, ConvexPolygon)>,
    },
}

/// Planar Isotropic Mechanism over policy components. Stateless — all
/// per-policy preparation lives in the [`PolicyIndex`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanarIsotropic {
    use_isotropic_transform: bool,
}

impl PlanarIsotropic {
    /// A PIM that samples directly in the sensitivity hull (no whitening).
    pub fn new() -> Self {
        PlanarIsotropic {
            use_isotropic_transform: false,
        }
    }

    /// A PIM that routes sampling through the isotropic transform, like the
    /// original CCS'15 construction. Distributionally identical to
    /// [`PlanarIsotropic::new`]; kept for the ablation benchmarks.
    pub fn with_isotropic_transform() -> Self {
        PlanarIsotropic {
            use_isotropic_transform: true,
        }
    }

    /// Pre-warms the index's hull cache for **every** component of its
    /// policy, so subsequent [`Mechanism::perturb_batch`] calls are
    /// O(sample + snap) from the first report on.
    pub fn prepare_all(&self, index: &PolicyIndex) {
        let policy = index.policy();
        for cell in policy.grid().cells() {
            self.hull_of(index, cell);
        }
    }

    /// The cached prepared hull of the component of `cell`.
    fn hull_of(&self, index: &PolicyIndex, cell: CellId) -> std::sync::Arc<PreparedHull> {
        index.pim_hull(cell, self.use_isotropic_transform, |policy| {
            Self::prepare_component(policy, cell, self.use_isotropic_transform)
        })
    }

    fn prepare_component(
        policy: &LocationPolicyGraph,
        member: CellId,
        use_isotropic_transform: bool,
    ) -> PreparedHull {
        let cells = policy.component_slice(member);
        if cells.len() <= 1 {
            return PreparedHull::Exact;
        }
        let grid = policy.grid();
        let positions: Vec<Point> = cells.iter().map(|&c| grid.center(c)).collect();
        // conv(A − A) via the position hull's vertices only.
        let position_hull: Vec<Point> = match ConvexPolygon::hull_of(&positions) {
            HullShape::Point(_) => unreachable!("distinct cells have distinct centres"),
            HullShape::Segment(a, b) => vec![a, b],
            HullShape::Polygon(p) => p.vertices().to_vec(),
        };
        match ConvexPolygon::hull_of(&difference_set(&position_hull)) {
            HullShape::Point(_) => PreparedHull::Exact,
            HullShape::Segment(a, b) => {
                // Symmetric segment [−e, e]; pick the positive endpoint.
                debug_assert!((a + b).norm() < 1e-6 * (1.0 + a.norm()));
                PreparedHull::Line { half_extent: b }
            }
            HullShape::Polygon(k) => {
                let iso = if use_isotropic_transform {
                    let cov = k.covariance();
                    cov.inv_sqrt().and_then(|t| {
                        let t_inv = t.inverse()?;
                        let k_iso = k.transform(&t)?;
                        Some((t, t_inv, k_iso))
                    })
                } else {
                    None
                };
                PreparedHull::Hull { k, iso }
            }
        }
    }

    /// Samples a K-norm noise vector with parameter `eps` for the prepared
    /// component. Shared with [`crate::mech::CellSampler`]'s K-norm handle,
    /// so the per-call and handle paths consume identical RNG sequences.
    pub(crate) fn sample_noise(kind: &PreparedHull, eps: f64, rng: &mut dyn RngCore) -> Point {
        match kind {
            PreparedHull::Exact => Point::ORIGIN,
            PreparedHull::Line { half_extent } => {
                // Density ∝ e^{−ε|t|} along the segment direction.
                *half_extent * laplace_1d(rng, 1.0 / eps)
            }
            PreparedHull::Hull { k, iso } => {
                let r = gamma_int(rng, 3, 1.0 / eps);
                match iso {
                    // Whitened path: sample in T(K), map back through T⁻¹.
                    Some((_, t_inv, k_iso)) => {
                        let u = k_iso.sample_uniform(rng);
                        t_inv.apply(u * r)
                    }
                    None => {
                        let u = k.sample_uniform(rng);
                        u * r
                    }
                }
            }
        }
    }

    fn snap(policy: &LocationPolicyGraph, cells: &[CellId], y: Point) -> CellId {
        crate::mech::snap_to_cells(policy.grid(), cells, y)
    }

    /// One release through a prepared hull.
    fn release_with(
        kind: &PreparedHull,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> CellId {
        if matches!(kind, PreparedHull::Exact) {
            return true_loc;
        }
        let cells = policy.component_slice(true_loc);
        let noise = Self::sample_noise(kind, eps, rng);
        let y = policy.grid().center(true_loc) + noise;
        Self::snap(policy, cells, y)
    }
}

impl Mechanism for PlanarIsotropic {
    fn name(&self) -> &'static str {
        if self.use_isotropic_transform {
            "pim-isotropic"
        } else {
            "pim"
        }
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        let kind = Self::prepare_component(policy, true_loc, self.use_isotropic_transform);
        Ok(Self::release_with(&kind, policy, eps, true_loc, rng))
    }

    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<crate::mech::CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        // One hull-cache read (plus a one-time build) here; draws then
        // sample K-norm noise and snap without touching the index again.
        let hull = self.hull_of(index, cell);
        if matches!(*hull, PreparedHull::Exact) {
            return Ok(crate::mech::CellSampler::exact(cell));
        }
        let grid = index.policy().grid();
        Ok(crate::mech::CellSampler::knorm(
            hull,
            eps,
            grid.center(cell),
            index.component_slice(cell),
            grid,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(6, 6, 100.0)
    }

    #[test]
    fn isolated_cells_released_exactly() {
        let p = LocationPolicyGraph::isolated(grid());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            PlanarIsotropic::new()
                .perturb(&p, 1.0, CellId(9), &mut rng)
                .unwrap(),
            CellId(9)
        );
    }

    #[test]
    fn output_stays_in_component() {
        let p = LocationPolicyGraph::partition(grid(), 3, 3);
        let pim = PlanarIsotropic::new();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..300 {
            let z = pim.perturb(&p, 0.5, CellId(0), &mut rng).unwrap();
            assert!(p.same_component(CellId(0), z));
        }
    }

    #[test]
    fn collinear_component_uses_line_noise() {
        // A 1×6 grid with a complete policy: all centres collinear.
        let g = GridMap::new(6, 1, 100.0);
        let p = LocationPolicyGraph::complete(g);
        let pim = PlanarIsotropic::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let z = pim.perturb(&p, 0.8, CellId(2), &mut rng).unwrap();
            seen.insert(z);
        }
        assert!(seen.len() >= 3, "line noise must spread over the segment");
    }

    #[test]
    fn index_hull_cache_fills_lazily_and_per_policy() {
        // Two policies over a 6×1 grid with matching cell/component counts
        // but different component shapes. Each index owns its own hulls, so
        // the PR-1 stale-cache hazard (a prepared hull applied to the wrong
        // policy) cannot arise.
        let g = GridMap::new(6, 1, 100.0);
        let a = LocationPolicyGraph::isolated(g.clone())
            .with_edges(&[(CellId(0), CellId(1)), (CellId(1), CellId(2))]);
        let b = LocationPolicyGraph::isolated(g.clone())
            .with_edges(&[(CellId(3), CellId(4)), (CellId(4), CellId(5))]);
        assert_eq!(a.n_components(), b.n_components());
        let (ia, ib) = (PolicyIndex::new(a), PolicyIndex::new(b));
        assert_eq!(ia.n_cached_pim_hulls(), 0, "hulls must build lazily");

        let pim = PlanarIsotropic::new();
        let mut rng = SmallRng::seed_from_u64(10);
        // Cell 3 is isolated under A (exact), in a 3-cell line under B.
        for _ in 0..200 {
            assert_eq!(
                pim.perturb_batch(&ia, 0.5, &[CellId(3)], &mut rng).unwrap()[0],
                CellId(3)
            );
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let z = pim.perturb_batch(&ib, 0.5, &[CellId(3)], &mut rng).unwrap()[0];
            assert!(ib.policy().same_component(CellId(3), z));
            seen.insert(z);
        }
        assert!(seen.len() >= 2, "cell 3 must receive noise under B");
        // Only the touched components were prepared.
        assert_eq!(ia.n_cached_pim_hulls(), 1);
        assert_eq!(ib.n_cached_pim_hulls(), 1);
    }

    #[test]
    fn prepare_all_warms_every_component() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let index = PolicyIndex::new(p);
        PlanarIsotropic::new().prepare_all(&index);
        assert_eq!(
            index.n_cached_pim_hulls(),
            index.policy().n_components() as usize
        );
    }

    #[test]
    fn indexed_batch_matches_percall_distribution() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let index = PolicyIndex::new(p.clone());
        let eps = 1.0;
        let s = CellId(0);
        const N: usize = 60_000;
        let pim = PlanarIsotropic::new();
        let percall = {
            let mut rng = SmallRng::seed_from_u64(4);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..N {
                let z = pim.perturb(&p, eps, s, &mut rng).unwrap();
                *counts.entry(z).or_insert(0usize) += 1;
            }
            counts
        };
        let batched = {
            let mut rng = SmallRng::seed_from_u64(5);
            let locs = vec![s; N];
            let mut counts = std::collections::HashMap::new();
            for z in pim.perturb_batch(&index, eps, &locs, &mut rng).unwrap() {
                *counts.entry(z).or_insert(0usize) += 1;
            }
            counts
        };
        for (cell, &n1) in &percall {
            let n2 = *batched.get(cell).unwrap_or(&0);
            let (f1, f2) = (n1 as f64 / N as f64, n2 as f64 / N as f64);
            assert!(
                (f1 - f2).abs() < 0.02,
                "cell {cell}: {f1} vs {f2} (indexed batch should match)"
            );
        }
    }

    #[test]
    fn isotropic_transform_is_distribution_preserving() {
        let p = LocationPolicyGraph::partition(grid(), 3, 2);
        let eps = 0.8;
        let s = CellId(1);
        const N: usize = 80_000;
        let census = |mech: &PlanarIsotropic, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..N {
                let z = mech.perturb(&p, eps, s, &mut rng).unwrap();
                *counts.entry(z).or_insert(0usize) += 1;
            }
            counts
        };
        let direct = census(&PlanarIsotropic::new(), 6);
        let iso = census(&PlanarIsotropic::with_isotropic_transform(), 7);
        for (cell, &n1) in &direct {
            let n2 = *iso.get(cell).unwrap_or(&0);
            let (f1, f2) = (n1 as f64 / N as f64, n2 as f64 / N as f64);
            assert!(
                (f1 - f2).abs() < 0.02,
                "cell {cell}: direct {f1} vs isotropic {f2}"
            );
        }
    }

    #[test]
    fn empirical_edge_ratio_respects_epsilon() {
        // Complete policy over a 2×2 grid = δ-location set of 4 cells:
        // the original PIM setting (Theorem 2.2).
        let p = LocationPolicyGraph::complete(GridMap::new(2, 2, 100.0));
        let pim = PlanarIsotropic::new();
        let eps = 1.0;
        const N: usize = 400_000;
        let index = PolicyIndex::new(p.clone());
        let mut rng = SmallRng::seed_from_u64(8);
        let census = |s: CellId, rng: &mut SmallRng| {
            let mut counts = [0usize; 4];
            let locs = vec![s; N];
            for z in pim.perturb_batch(&index, eps, &locs, rng).unwrap() {
                counts[z.index()] += 1;
            }
            counts
        };
        let ca = census(CellId(0), &mut rng);
        let cb = census(CellId(1), &mut rng);
        for i in 0..4 {
            if ca[i] > 1000 && cb[i] > 1000 {
                let ratio = ca[i] as f64 / cb[i] as f64;
                assert!(
                    ratio <= eps.exp() * 1.25,
                    "output {i}: ratio {ratio} exceeds e^eps"
                );
            }
        }
    }

    #[test]
    fn error_decreases_with_epsilon() {
        let p = LocationPolicyGraph::partition(grid(), 3, 3);
        let index = PolicyIndex::new(p.clone());
        let pim = PlanarIsotropic::new();
        let s = CellId(7);
        let mut rng = SmallRng::seed_from_u64(9);
        let mean_err = |eps: f64, rng: &mut SmallRng| {
            const N: usize = 4000;
            let locs = vec![s; N];
            pim.perturb_batch(&index, eps, &locs, rng)
                .unwrap()
                .into_iter()
                .map(|z| p.grid().distance(s, z))
                .sum::<f64>()
                / N as f64
        };
        let coarse = mean_err(0.2, &mut rng);
        let fine = mean_err(5.0, &mut rng);
        assert!(fine < coarse, "{fine} !< {coarse}");
    }
}
