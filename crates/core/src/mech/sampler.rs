//! [`CellSampler`]: a resolved, cheaply-clonable per-cell draw handle.
//!
//! The streaming release path perturbs one report per call (per-report RNG
//! streams keyed by arrival sequence), so before this module every report
//! paid one [`PolicyIndex`] distribution-cache mutex acquisition — under
//! cell-concentrated load, parallel flush lanes serialised on that single
//! lock. A [`CellSampler`] front-loads *all* shared-state access into one
//! resolution step ([`Mechanism::sampler`]): the handle owns (or borrows)
//! everything a draw needs — an `Arc` of the compiled alias/cumulative
//! table, the calibration scale with the component slice to snap onto, or
//! the prepared PIM hull — and [`CellSampler::draw`] then touches no lock at
//! all. Lanes resolve one handle per **distinct** cell (see [`SamplerMemo`])
//! and draw per report.
//!
//! ## Determinism contract
//!
//! For every mechanism shipping a [`Mechanism::sampler`] override,
//! [`CellSampler::draw`] consumes **exactly** the RNG sequence of
//! [`Mechanism::perturb_batch_into`] on a single-report batch (which itself
//! matches the pre-handle streaming path). Resolution consumes no
//! randomness. A fixed `(seed, arrival order)` therefore lands the same
//! database whether reports are released per report, per chunk, or through
//! per-lane memoised handles — CI enforces this byte-for-byte.

use crate::error::PglpError;
use crate::index::{PolicyIndex, SamplingTable};
use crate::mech::noise::planar_laplace_noise;
use crate::mech::pim::{PlanarIsotropic, PreparedHull};
use crate::mech::Mechanism;
use panda_geo::{CellId, GridMap, Point};
use rand::Rng;
use rand::RngCore;
use std::collections::hash_map::Entry;
// panda-check: allow(unordered_iter): memo is keyed lookup only, never iterated
use std::collections::HashMap;
use std::sync::Arc;

/// How a resolved handle turns randomness into a released cell.
#[derive(Debug, Clone)]
enum Draw<'a> {
    /// Deterministic release (isolated cells, identity). Consumes no
    /// randomness.
    Exact(CellId),
    /// One draw from a compiled sampling table (graph/euclidean exponential
    /// and any closed-form mechanism).
    Table(Arc<SamplingTable>),
    /// Continuous planar Laplace noise around `center` with rate `scale`,
    /// snapped to the nearest cell of the component slice.
    LaplaceSnap {
        center: Point,
        scale: f64,
        cells: &'a [CellId],
        grid: &'a GridMap,
    },
    /// Continuous planar Laplace noise snapped to the nearest cell of the
    /// *whole grid* (the Geo-Indistinguishability baseline).
    GridSnap {
        center: Point,
        scale: f64,
        grid: &'a GridMap,
    },
    /// K-norm noise through a prepared PIM sensitivity hull, snapped to the
    /// component slice.
    Knorm {
        hull: Arc<PreparedHull>,
        eps: f64,
        center: Point,
        cells: &'a [CellId],
        grid: &'a GridMap,
    },
    /// A uniform pick from the component slice.
    Uniform { cells: &'a [CellId] },
    /// A base handle post-processed through a dense remap table.
    Remap {
        inner: Box<CellSampler<'a>>,
        table: &'a [CellId],
    },
}

/// A resolved draw handle for one `(mechanism, ε, true cell)` triple.
///
/// Obtained from [`Mechanism::sampler`]; validation and every shared-cache
/// lookup happen at resolution time, so [`CellSampler::draw`] is infallible
/// and lock-free. Handles are cheap to clone (an `Arc` bump or a couple of
/// borrowed slices) and borrow the [`PolicyIndex`] they were resolved
/// against.
#[derive(Debug, Clone)]
pub struct CellSampler<'a> {
    draw: Draw<'a>,
}

impl<'a> CellSampler<'a> {
    /// A handle that always releases `cell` exactly, consuming no
    /// randomness (isolated cells, the identity mechanism).
    pub fn exact(cell: CellId) -> Self {
        CellSampler {
            draw: Draw::Exact(cell),
        }
    }

    /// A handle drawing from a compiled sampling table.
    pub fn table(table: Arc<SamplingTable>) -> Self {
        CellSampler {
            draw: Draw::Table(table),
        }
    }

    /// A handle adding planar Laplace noise (rate `scale`, per length unit)
    /// around `center` and snapping to the nearest cell of `cells`.
    pub fn laplace_snap(grid: &'a GridMap, cells: &'a [CellId], center: Point, scale: f64) -> Self {
        CellSampler {
            draw: Draw::LaplaceSnap {
                center,
                scale,
                cells,
                grid,
            },
        }
    }

    /// A handle adding planar Laplace noise around `center` and snapping to
    /// the nearest cell of the whole grid (no policy constraint).
    pub fn grid_snap(grid: &'a GridMap, center: Point, scale: f64) -> Self {
        CellSampler {
            draw: Draw::GridSnap {
                center,
                scale,
                grid,
            },
        }
    }

    /// A handle sampling K-norm noise through a prepared PIM hull and
    /// snapping to the component slice.
    pub(crate) fn knorm(
        hull: Arc<PreparedHull>,
        eps: f64,
        center: Point,
        cells: &'a [CellId],
        grid: &'a GridMap,
    ) -> Self {
        CellSampler {
            draw: Draw::Knorm {
                hull,
                eps,
                center,
                cells,
                grid,
            },
        }
    }

    /// A handle releasing a uniform cell of `cells`.
    pub fn uniform(cells: &'a [CellId]) -> Self {
        CellSampler {
            draw: Draw::Uniform { cells },
        }
    }

    /// A handle post-processing every draw of `inner` through a dense remap
    /// table (`table[z.index()]` = released cell) — post-processing never
    /// weakens {ε,G}-location privacy.
    pub fn remapped(inner: CellSampler<'a>, table: &'a [CellId]) -> Self {
        CellSampler {
            draw: Draw::Remap {
                inner: Box::new(inner),
                table,
            },
        }
    }

    /// Draws one released cell. Infallible and lock-free: all validation
    /// and shared-cache access happened when the handle was resolved.
    pub fn draw(&self, rng: &mut dyn RngCore) -> CellId {
        match &self.draw {
            Draw::Exact(c) => *c,
            Draw::Table(table) => table.sample(rng),
            Draw::LaplaceSnap {
                center,
                scale,
                cells,
                grid,
            } => {
                let y = *center + planar_laplace_noise(rng, *scale);
                snap_to_cells(grid, cells, y)
            }
            Draw::GridSnap {
                center,
                scale,
                grid,
            } => grid.nearest_cell(*center + planar_laplace_noise(rng, *scale)),
            Draw::Knorm {
                hull,
                eps,
                center,
                cells,
                grid,
            } => {
                let y = *center + PlanarIsotropic::sample_noise(hull, *eps, rng);
                snap_to_cells(grid, cells, y)
            }
            Draw::Uniform { cells } => cells[rng.gen_range(0..cells.len())],
            Draw::Remap { inner, table } => table[inner.draw(rng).index()],
        }
    }
}

/// Snaps a continuous point to the nearest cell among `cells`
/// (deterministic; ties broken by lower cell id via strict `<`). Shared by
/// the Laplace-style and PIM handles — and by their per-call paths, so the
/// two can never drift apart.
pub fn snap_to_cells(grid: &GridMap, cells: &[CellId], y: Point) -> CellId {
    let mut best = cells[0];
    let mut best_d = grid.center(best).distance_sq(y);
    for &c in &cells[1..] {
        let d = grid.center(c).distance_sq(y);
        if d < best_d {
            best = c;
            best_d = d;
        }
    }
    best
}

/// A lane-local memo of resolved [`CellSampler`]s, keyed by true cell.
///
/// The release engine's unit of contention control: each lane (a release
/// chunk sequence, an ingest flush slice, a caller batch) owns one memo, so
/// the shared [`PolicyIndex`] caches are touched **at most once per distinct
/// cell per lane** no matter how many reports the lane releases.
///
/// Mechanisms without sampler support (no override and no closed-form
/// distribution) are detected on the first resolution and remembered:
/// [`SamplerMemo::resolve`] then returns `Ok(None)` and callers take the
/// per-report path instead.
///
/// A memo is scoped to **one `(mechanism, ε, policy index)` triple** — the
/// map is keyed by cell alone, so reusing it across mechanisms, epsilons or
/// indices would silently serve stale handles. Every release-engine lane
/// pins the triple for its lifetime; a `debug_assert` catches mixed use.
#[derive(Debug, Default)]
pub struct SamplerMemo<'a> {
    // panda-check: allow(unordered_iter): keyed lookup only, never iterated
    samplers: HashMap<CellId, CellSampler<'a>>,
    unsupported: bool,
    /// `(mechanism name, mechanism address, ε bits)` of the first
    /// resolution, to assert the one-triple-per-memo discipline in debug
    /// builds. The address disambiguates same-named wrappers (two
    /// `RemappedMechanism`s over different bases); zero-sized mechanisms
    /// use the name alone (every instance is the one mechanism, and ZST
    /// addresses are not meaningful identities).
    #[cfg(debug_assertions)]
    scope: Option<(&'static str, usize, u64)>,
}

impl<'a> SamplerMemo<'a> {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the mechanism turned out not to support samplers (sticky
    /// after the first [`PglpError::SamplerUnsupported`] resolution).
    pub fn unsupported(&self) -> bool {
        self.unsupported
    }

    /// Distinct cells resolved so far (diagnostics).
    pub fn len(&self) -> usize {
        self.samplers.len()
    }

    /// `true` when no cell has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.samplers.is_empty()
    }

    /// The memoised handle for `cell`, resolving it through
    /// [`Mechanism::sampler`] on first sight. `Ok(None)` means the
    /// mechanism has no sampler support — release per report instead.
    ///
    /// # Panics
    ///
    /// In debug builds, when one memo is fed different mechanisms or
    /// epsilons (handles are memoised by cell alone; see the type docs).
    ///
    /// # Errors
    ///
    /// Propagates resolution failures ([`PglpError::InvalidEpsilon`],
    /// [`PglpError::LocationOutOfDomain`]) other than
    /// [`PglpError::SamplerUnsupported`].
    pub fn resolve<M>(
        &mut self,
        mech: &'a M,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<Option<&CellSampler<'a>>, PglpError>
    where
        M: Mechanism + ?Sized,
    {
        #[cfg(debug_assertions)]
        {
            let addr = if std::mem::size_of_val(mech) > 0 {
                std::ptr::addr_of!(*mech) as *const () as usize
            } else {
                0
            };
            let scope = (mech.name(), addr, eps.to_bits());
            debug_assert_eq!(
                *self.scope.get_or_insert(scope),
                scope,
                "a SamplerMemo serves exactly one (mechanism, eps) pair"
            );
        }
        if self.unsupported {
            return Ok(None);
        }
        match self.samplers.entry(cell) {
            Entry::Occupied(e) => Ok(Some(e.into_mut())),
            Entry::Vacant(v) => match mech.sampler(index, eps, cell) {
                Ok(sampler) => Ok(Some(v.insert(sampler))),
                Err(PglpError::SamplerUnsupported(_)) => {
                    self.unsupported = true;
                    Ok(None)
                }
                Err(e) => Err(e),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::{GraphExponential, IdentityMechanism, UniformComponent};
    use crate::policy::LocationPolicyGraph;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn index() -> PolicyIndex {
        PolicyIndex::new(LocationPolicyGraph::partition(
            GridMap::new(4, 4, 100.0),
            2,
            2,
        ))
    }

    #[test]
    fn exact_handle_consumes_no_randomness() {
        let mut rng = SmallRng::seed_from_u64(1);
        let before = rng.clone();
        let sampler = CellSampler::exact(CellId(3));
        assert_eq!(sampler.draw(&mut rng), CellId(3));
        // The RNG state is untouched: both clones draw the same next value.
        let mut after = rng;
        let mut before = before;
        assert_eq!(before.next_u64(), after.next_u64());
    }

    #[test]
    fn memo_resolves_each_cell_once() {
        let index = index();
        let mut memo = SamplerMemo::new();
        let touches0 = index.distribution_cache_touches();
        for _ in 0..100 {
            for cell in [CellId(0), CellId(5)] {
                memo.resolve(&GraphExponential, &index, 1.0, cell)
                    .unwrap()
                    .unwrap();
            }
        }
        assert_eq!(memo.len(), 2);
        assert_eq!(
            index.distribution_cache_touches() - touches0,
            2,
            "one cache touch per distinct cell, not per resolve"
        );
    }

    #[test]
    fn memo_propagates_real_errors() {
        // One memo per (mechanism, eps) pair — the memo discipline.
        let index = index();
        let mut bad_eps = SamplerMemo::new();
        assert!(matches!(
            bad_eps.resolve(&GraphExponential, &index, 0.0, CellId(0)),
            Err(PglpError::InvalidEpsilon(_))
        ));
        assert!(!bad_eps.unsupported());
        let mut bad_cell = SamplerMemo::new();
        assert!(matches!(
            bad_cell.resolve(&GraphExponential, &index, 1.0, CellId(u32::MAX)),
            Err(PglpError::LocationOutOfDomain(_))
        ));
        assert!(!bad_cell.unsupported());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "one (mechanism, eps) pair")]
    fn memo_rejects_mixed_epsilons_in_debug() {
        let index = index();
        let mut memo = SamplerMemo::new();
        let _ = memo.resolve(&GraphExponential, &index, 1.0, CellId(0));
        let _ = memo.resolve(&GraphExponential, &index, 2.0, CellId(1));
    }

    #[test]
    fn memo_remembers_unsupported_mechanisms() {
        /// No override, no closed form: the default must report
        /// `SamplerUnsupported` and the memo must remember it.
        struct Opaque;
        impl Mechanism for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn perturb(
                &self,
                policy: &LocationPolicyGraph,
                eps: f64,
                true_loc: CellId,
                _rng: &mut dyn RngCore,
            ) -> Result<CellId, PglpError> {
                crate::mech::validate(policy, eps, true_loc)?;
                Ok(true_loc)
            }
        }
        let index = index();
        assert!(matches!(
            Opaque.sampler(&index, 1.0, CellId(0)),
            Err(PglpError::SamplerUnsupported("opaque"))
        ));
        let mut memo = SamplerMemo::new();
        assert!(memo
            .resolve(&Opaque, &index, 1.0, CellId(0))
            .unwrap()
            .is_none());
        assert!(memo.unsupported());
        assert!(memo
            .resolve(&Opaque, &index, 1.0, CellId(1))
            .unwrap()
            .is_none());
        assert!(memo.is_empty(), "unsupported mechanisms memoise nothing");
    }

    #[test]
    fn handles_are_clonable_and_deterministic() {
        let index = index();
        let sampler = GraphExponential.sampler(&index, 1.0, CellId(0)).unwrap();
        let clone = sampler.clone();
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(sampler.draw(&mut a), clone.draw(&mut b));
        }
    }

    #[test]
    fn identity_and_uniform_handles_match_components() {
        let index = index();
        let mut rng = SmallRng::seed_from_u64(4);
        let id = IdentityMechanism.sampler(&index, 1.0, CellId(6)).unwrap();
        assert_eq!(id.draw(&mut rng), CellId(6));
        let uni = UniformComponent.sampler(&index, 1.0, CellId(6)).unwrap();
        for _ in 0..100 {
            let z = uni.draw(&mut rng);
            assert!(index.policy().same_component(CellId(6), z));
        }
    }
}
