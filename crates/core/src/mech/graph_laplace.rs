//! Graph-calibrated planar Laplace — the technical report's Laplace
//! adaptation for PGLP.
//!
//! **Construction.** For true location `s` in component `C(s)`:
//!
//! 1. Compute `L = max Euclidean length of any policy edge within C(s)`.
//! 2. Sample a continuous point `y = center(s) + planar-Laplace(ε / L)`.
//! 3. Snap `y` to the nearest cell of `C(s)`.
//!
//! **Privacy.** The continuous release satisfies
//! `(ε/L)·d_E(s, s′)`-indistinguishability for all pairs (the planar Laplace
//! guarantee). Along a shortest policy path from `s` to `s′`, each hop moves
//! at most `L` in Euclidean distance, so `d_E(s, s′) ≤ L·d_G(s, s′)`; hence
//! the release is `ε·d_G(s, s′)`-indistinguishable — the Lemma 2.1
//! requirement, and in particular `ε`-indistinguishable on every policy
//! edge. Snapping is data-independent post-processing *within a component*
//! (1-neighbours share the component, so they share the snap map), which
//! preserves the bound. Isolated nodes are released exactly.
//!
//! Compared to [`crate::mech::GraphExponential`], this mechanism's noise is
//! spatially shaped (it prefers geographically close cells rather than
//! low-hop cells) but it pays for long policy edges: a single long-range
//! edge inflates `L` and thus the noise everywhere in the component — one of
//! the trade-offs the Fig. 5 explorer makes visible.

use crate::error::PglpError;
use crate::index::PolicyIndex;
use crate::mech::noise::planar_laplace_noise;
use crate::mech::{validate, Mechanism};
use crate::policy::LocationPolicyGraph;
use panda_geo::{CellId, Point};
use rand::RngCore;

/// Graph-calibrated planar Laplace mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphCalibratedLaplace;

impl GraphCalibratedLaplace {
    /// The calibration length `L`: the maximum Euclidean length of a policy
    /// edge inside the component of `s`. Returns `None` when `s` is
    /// isolated (no edges → exact release).
    pub fn calibration_length(policy: &LocationPolicyGraph, s: CellId) -> Option<f64> {
        crate::index::compute_calibration_length(policy, s)
    }

    /// Snaps a continuous point to the nearest cell among `cells`
    /// (deterministic; ties broken by lower cell id via strict `<`).
    fn snap(policy: &LocationPolicyGraph, cells: &[CellId], y: Point) -> CellId {
        crate::mech::snap_to_cells(policy.grid(), cells, y)
    }
}

impl Mechanism for GraphCalibratedLaplace {
    fn name(&self) -> &'static str {
        "graph-laplace"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        let Some(len) = Self::calibration_length(policy, true_loc) else {
            return Ok(true_loc); // isolated: exact release
        };
        let cells = policy.component_slice(true_loc);
        let center = policy.grid().center(true_loc);
        let y = center + planar_laplace_noise(rng, eps / len);
        Ok(Self::snap(policy, cells, y))
    }

    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<crate::mech::CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        // Calibration length comes from the per-component cache; the noise
        // itself is continuous, so the handle carries the scale and the
        // component slice to snap onto instead of a table.
        match index.calibration_length(cell) {
            None => Ok(crate::mech::CellSampler::exact(cell)), // isolated
            Some(len) => {
                let grid = index.policy().grid();
                Ok(crate::mech::CellSampler::laplace_snap(
                    grid,
                    index.component_slice(cell),
                    grid.center(cell),
                    eps / len,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(6, 6, 100.0)
    }

    #[test]
    fn calibration_length_g1_is_diagonal() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let len = GraphCalibratedLaplace::calibration_length(&p, CellId(0)).unwrap();
        assert!((len - 100.0 * 2.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn calibration_length_partition_is_block_diameter() {
        let p = LocationPolicyGraph::partition(grid(), 3, 3);
        // Cliques: the longest edge is the block diagonal, 2 cells apart
        // both ways: 200·√2.
        let len = GraphCalibratedLaplace::calibration_length(&p, CellId(0)).unwrap();
        assert!((len - 200.0 * 2.0_f64.sqrt()).abs() < 1e-9, "len {len}");
    }

    #[test]
    fn isolated_cell_no_calibration_exact_release() {
        let p = LocationPolicyGraph::isolated(grid());
        assert!(GraphCalibratedLaplace::calibration_length(&p, CellId(3)).is_none());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            GraphCalibratedLaplace
                .perturb(&p, 1.0, CellId(3), &mut rng)
                .unwrap(),
            CellId(3)
        );
    }

    #[test]
    fn output_stays_in_component() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..300 {
            let z = GraphCalibratedLaplace
                .perturb(&p, 0.5, CellId(0), &mut rng)
                .unwrap();
            assert!(p.same_component(CellId(0), z));
        }
    }

    #[test]
    fn high_eps_concentrates_on_truth() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let s = p.grid().cell(3, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..1000)
            .filter(|_| {
                GraphCalibratedLaplace
                    .perturb(&p, 20.0, s, &mut rng)
                    .unwrap()
                    == s
            })
            .count();
        assert!(hits > 900, "only {hits}/1000 exact at eps=20");
    }

    #[test]
    fn low_eps_spreads_mass() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let s = p.grid().cell(3, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..500 {
            distinct.insert(
                GraphCalibratedLaplace
                    .perturb(&p, 0.1, s, &mut rng)
                    .unwrap(),
            );
        }
        assert!(
            distinct.len() > 10,
            "only {} distinct cells",
            distinct.len()
        );
    }

    /// Monte-Carlo audit of the defining ε bound on one policy edge.
    ///
    /// With N = 400k samples per input and a coarse 4-cell component, the
    /// worst-case empirical ratio estimate is well within 10% of truth, so a
    /// 25% slack on e^ε makes the test deterministic under the fixed seed
    /// while still catching calibration mistakes (which blow the ratio up by
    /// factors of e).
    #[test]
    fn empirical_edge_ratio_respects_epsilon() {
        let p = LocationPolicyGraph::partition(GridMap::new(4, 2, 100.0), 2, 2);
        let (sa, sb) = (CellId(0), CellId(1));
        assert!(p.are_neighbors(sa, sb));
        let eps = 1.0;
        const N: usize = 400_000;
        let mut rng = SmallRng::seed_from_u64(5);
        let count = |s: CellId, rng: &mut SmallRng| {
            let mut m = std::collections::HashMap::new();
            for _ in 0..N {
                let z = GraphCalibratedLaplace.perturb(&p, eps, s, rng).unwrap();
                *m.entry(z).or_insert(0usize) += 1;
            }
            m
        };
        let ca = count(sa, &mut rng);
        let cb = count(sb, &mut rng);
        for (z, &na) in &ca {
            let nb = *cb.get(z).unwrap_or(&0);
            if na > 1000 && nb > 1000 {
                let ratio = na as f64 / nb as f64;
                assert!(
                    ratio <= (eps.exp()) * 1.25,
                    "output {z}: ratio {ratio} exceeds e^eps"
                );
            }
        }
    }
}
