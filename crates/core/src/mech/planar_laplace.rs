//! The Geo-Indistinguishability baseline (Andrés et al., CCS'13).
//!
//! This mechanism **ignores the policy graph**: it adds planar Laplace noise
//! with parameter `ε / cell_size` (i.e. ε per cell of Euclidean distance)
//! around the true cell centre and snaps to the nearest cell of the whole
//! grid. It guarantees `ε·d_E`-indistinguishability between any two cells,
//! with `d_E` in cell units — plain ε-Geo-Indistinguishability.
//!
//! Theorem 2.1 relates it to PGLP: `{ε, G1}`-location privacy *implies*
//! ε-Geo-Indistinguishability because `d_G1 ≤ d_E`; the converse does not
//! hold for other policy graphs, and the experiments show what that costs —
//! under the partition policies `Ga`/`Gb` the planar Laplace wastes budget
//! protecting pairs the policy never asked to protect.

use crate::error::PglpError;
use crate::index::PolicyIndex;
use crate::mech::noise::planar_laplace_noise;
use crate::mech::{validate, Mechanism};
use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use rand::RngCore;

/// Planar Laplace (Geo-Indistinguishability) baseline mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanarLaplace;

impl Mechanism for PlanarLaplace {
    fn name(&self) -> &'static str {
        "planar-laplace"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        validate(policy, eps, true_loc)?;
        let grid = policy.grid();
        let center = grid.center(true_loc);
        // ε is interpreted per cell: a one-cell move costs ε.
        let y = center + planar_laplace_noise(rng, eps / grid.cell_size());
        Ok(grid.nearest_cell(y))
    }

    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<crate::mech::CellSampler<'a>, PglpError> {
        validate(index.policy(), eps, cell)?;
        let grid = index.policy().grid();
        // Same continuous noise + whole-grid snap as `perturb`: the policy
        // graph plays no role in this baseline.
        Ok(crate::mech::CellSampler::grid_snap(
            grid,
            grid.center(cell),
            eps / grid.cell_size(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn policy() -> LocationPolicyGraph {
        LocationPolicyGraph::g1_geo_indistinguishability(GridMap::new(8, 8, 250.0))
    }

    #[test]
    fn outputs_are_valid_cells() {
        let p = policy();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            let z = PlanarLaplace.perturb(&p, 0.5, CellId(0), &mut rng).unwrap();
            assert!(p.grid().contains(z));
        }
    }

    #[test]
    fn error_shrinks_with_epsilon() {
        let p = policy();
        let s = p.grid().cell(4, 4);
        let mut rng = SmallRng::seed_from_u64(2);
        let mean_err = |eps: f64, rng: &mut SmallRng| -> f64 {
            let mut total = 0.0;
            const N: usize = 3000;
            for _ in 0..N {
                let z = PlanarLaplace.perturb(&p, eps, s, rng).unwrap();
                total += p.grid().distance(s, z);
            }
            total / N as f64
        };
        let coarse = mean_err(0.5, &mut rng);
        let fine = mean_err(4.0, &mut rng);
        assert!(
            fine < coarse,
            "error must shrink with eps: {fine} !< {coarse}"
        );
    }

    #[test]
    fn ignores_policy_structure() {
        // Under a partition policy the planar Laplace can (and does) emit
        // cells outside the true location's component.
        let p = LocationPolicyGraph::partition(GridMap::new(8, 8, 250.0), 2, 2);
        let s = p.grid().cell(0, 0);
        let mut rng = SmallRng::seed_from_u64(3);
        let escaped = (0..2000)
            .filter(|_| {
                let z = PlanarLaplace.perturb(&p, 0.5, s, &mut rng).unwrap();
                !p.same_component(s, z)
            })
            .count();
        assert!(escaped > 0, "expected component escapes from the baseline");
    }

    #[test]
    fn respects_geo_ind_ratio_empirically() {
        // ε·d_E Geo-Ind check between two adjacent cells on a tiny grid.
        let p = LocationPolicyGraph::g1_geo_indistinguishability(GridMap::new(3, 1, 100.0));
        let (sa, sb) = (CellId(0), CellId(1));
        let eps = 1.0;
        const N: usize = 400_000;
        let mut rng = SmallRng::seed_from_u64(4);
        let census = |s: CellId, rng: &mut SmallRng| {
            let mut counts = [0usize; 3];
            for _ in 0..N {
                let z = PlanarLaplace.perturb(&p, eps, s, rng).unwrap();
                counts[z.index()] += 1;
            }
            counts
        };
        let ca = census(sa, &mut rng);
        let cb = census(sb, &mut rng);
        for i in 0..3 {
            if ca[i] > 1000 && cb[i] > 1000 {
                let ratio = ca[i] as f64 / cb[i] as f64;
                assert!(
                    ratio <= eps.exp() * 1.25,
                    "output {i}: ratio {ratio} exceeds e^eps for d_E = 1"
                );
            }
        }
    }
}
