//! A weight-aware LRU cache (the [`crate::PolicyIndex`] distribution-cache
//! backend).
//!
//! Entries carry an explicit *weight* (for sampling tables: the support
//! size), and the cache evicts least-recently-used entries until the total
//! weight fits the capacity — strictly better than the previous
//! serve-without-retain policy, which froze the cache at whatever filled it
//! first and rebuilt everything else forever.
//!
//! O(1) `get`/`insert` via a slab-backed doubly-linked recency list.

use panda_obs::Counter;
// panda-check: allow(unordered_iter): key->slot lookup only; recency order lives in the slab list
use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel for "no slot".
const NIL: usize = usize::MAX;

/// Lifetime hit/miss/eviction counters of a [`WeightedLru`] (diagnostics;
/// surfaced through `PolicyIndex` cache-stats accessors).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// Entries evicted to make room (does not count same-key replacement
    /// or oversized entries that were never retained).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups so far, `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The live counter handles behind [`CacheStats`]: cloneable, so a metrics
/// registry can adopt them for scraping while the cache keeps recording.
#[derive(Debug, Default)]
pub(crate) struct CacheCounters {
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) evictions: Counter,
}

impl CacheCounters {
    /// The point-in-time POD view.
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }
}

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    weight: usize,
    prev: usize,
    next: usize,
}

/// A weighted LRU cache. Not thread-safe by itself; callers wrap it in a
/// lock (reads promote recency, so even lookups mutate).
#[derive(Debug)]
pub(crate) struct WeightedLru<K, V> {
    // panda-check: allow(unordered_iter): never iterated (see module doc)
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot.
    tail: usize,
    weight: usize,
    capacity: usize,
    stats: CacheCounters,
}

impl<K: Eq + Hash + Clone, V: Clone> WeightedLru<K, V> {
    /// An empty cache with the given total-weight capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        WeightedLru {
            // panda-check: allow(unordered_iter): never iterated (see module doc)
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            weight: 0,
            capacity,
            stats: CacheCounters::default(),
        }
    }

    /// Number of cached entries.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Total weight of cached entries.
    pub(crate) fn weight(&self) -> usize {
        self.weight
    }

    /// Lifetime hit/miss/eviction counters.
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The live counter handles (for adoption into a metrics registry).
    pub(crate) fn counters(&self) -> &CacheCounters {
        &self.stats
    }

    /// Iterates over the cached values in unspecified order (for exact
    /// memory accounting; does not touch recency).
    pub(crate) fn iter_values(&self) -> impl Iterator<Item = &V> {
        self.map.values().map(|&slot| &self.slots[slot].value)
    }

    /// Detaches `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Pushes `slot` to the front (most-recently-used).
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        let Some(&slot) = self.map.get(key) else {
            self.stats.misses.inc();
            return None;
        };
        self.stats.hits.inc();
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
        Some(self.slots[slot].value.clone())
    }

    /// Evicts least-recently-used entries until `extra` additional weight
    /// fits the capacity.
    fn make_room(&mut self, extra: usize) {
        while self.weight + extra > self.capacity && self.tail != NIL {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.weight -= self.slots[victim].weight;
            self.free.push(victim);
            self.stats.evictions.inc();
        }
    }

    /// Inserts `key → value` with the given weight, evicting LRU entries to
    /// make room. An entry heavier than the whole capacity is not retained
    /// (serving it is the caller's business); an existing entry under the
    /// same key is replaced.
    pub(crate) fn insert(&mut self, key: K, value: V, weight: usize) {
        if let Some(&slot) = self.map.get(&key) {
            self.unlink(slot);
            self.map.remove(&self.slots[slot].key);
            self.weight -= self.slots[slot].weight;
            self.free.push(slot);
        }
        if weight > self.capacity {
            return;
        }
        self.make_room(weight);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Slot {
                    key: key.clone(),
                    value,
                    weight,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    weight,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.weight += weight;
        self.push_front(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_weight_accounting() {
        let mut lru: WeightedLru<u32, &str> = WeightedLru::new(10);
        lru.insert(1, "a", 4);
        lru.insert(2, "b", 4);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.weight(), 8);
        assert_eq!(lru.get(&1), Some("a"));
        assert_eq!(lru.get(&3), None);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru: WeightedLru<u32, u32> = WeightedLru::new(10);
        lru.insert(1, 10, 4);
        lru.insert(2, 20, 4);
        // Touch 1 so 2 becomes LRU, then overflow.
        assert_eq!(lru.get(&1), Some(10));
        lru.insert(3, 30, 4);
        assert_eq!(lru.get(&2), None, "2 was LRU and must be evicted");
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.weight(), 8);
    }

    #[test]
    fn heavy_entry_evicts_many() {
        let mut lru: WeightedLru<u32, u32> = WeightedLru::new(10);
        for k in 0..5 {
            lru.insert(k, k, 2);
        }
        lru.insert(9, 9, 9);
        assert_eq!(lru.get(&9), Some(9));
        assert_eq!(lru.len(), 1, "the 9-weight entry displaces four 2s");
        assert_eq!(lru.weight(), 9);
    }

    #[test]
    fn oversized_entry_not_retained() {
        let mut lru: WeightedLru<u32, u32> = WeightedLru::new(10);
        lru.insert(1, 1, 2);
        lru.insert(2, 2, 11);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(1), "existing entries survive");
    }

    #[test]
    fn replacing_a_key_updates_weight() {
        let mut lru: WeightedLru<u32, u32> = WeightedLru::new(10);
        lru.insert(1, 1, 8);
        lru.insert(1, 2, 3);
        assert_eq!(lru.get(&1), Some(2));
        assert_eq!(lru.weight(), 3);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn stats_count_hits_misses_evictions() {
        let mut lru: WeightedLru<u32, u32> = WeightedLru::new(4);
        assert_eq!(lru.stats(), CacheStats::default());
        assert_eq!(lru.stats().hit_rate(), 0.0);
        lru.insert(1, 10, 2);
        lru.insert(2, 20, 2);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&7), None);
        assert_eq!(lru.get(&2), Some(20));
        // Overflow: key 1 is now LRU and gets evicted.
        lru.insert(3, 30, 2);
        assert_eq!(lru.get(&1), None);
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 2, 1));
        assert_eq!(s.hit_rate(), 0.5);
        // Same-key replacement and oversized rejection are not evictions.
        lru.insert(3, 31, 2);
        lru.insert(9, 90, 99);
        assert_eq!(lru.stats().evictions, 1);
    }

    #[test]
    fn iter_values_covers_live_entries() {
        let mut lru: WeightedLru<u32, u32> = WeightedLru::new(6);
        for k in 0..4 {
            lru.insert(k, k * 10, 2);
        }
        let mut vals: Vec<u32> = lru.iter_values().copied().collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![10, 20, 30], "evicted values must not appear");
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut lru: WeightedLru<u32, u32> = WeightedLru::new(4);
        for k in 0..100 {
            lru.insert(k, k, 2);
        }
        assert_eq!(lru.len(), 2);
        assert!(lru.slots.len() <= 3, "slab must recycle evicted slots");
        assert_eq!(lru.get(&99), Some(99));
        assert_eq!(lru.get(&98), Some(98));
    }
}
