//! # panda-core
//!
//! The paper's primary contribution: **Policy Graph-based Location Privacy**
//! (PGLP) — customizable, rigorous location privacy through *location policy
//! graphs* (Cao et al., PVLDB 2020, and the companion technical report).
//!
//! ## Concepts (paper §2)
//!
//! * [`policy::LocationPolicyGraph`] — Def. 2.1: an undirected graph whose
//!   nodes are the possible locations (grid cells) and whose edges demand
//!   indistinguishability. Presets for every graph the paper draws: `G1`
//!   (geo-indistinguishability, Thm. 2.1), `G2` (δ-location sets, Thm. 2.2),
//!   `Ga`/`Gb` (partition policies) and `Gc` (contact tracing), plus the
//!   demo's random-policy generator (Fig. 5).
//! * [`privacy`] — Def. 2.4 ({ε,G}-location privacy) as an *executable
//!   check*: exact distribution audits over every policy edge, and the
//!   Lemma 2.1 bound for ∞-neighbours.
//! * [`mech`] — mechanisms satisfying {ε,G}-location privacy: the
//!   graph-exponential mechanism, a graph-calibrated planar Laplace, the
//!   Planar Isotropic Mechanism (K-norm noise over the sensitivity hull) and
//!   baselines.
//! * [`index`] — the [`PolicyIndex`] bulk-release fast path: LRU-cached
//!   per-`(mechanism, ε, cell)` sampling tables (alias-compiled for large
//!   supports) over the policy's lazily-built distance tables, consumed by
//!   [`Mechanism::perturb_batch`].
//! * [`release`] — the [`release::ParallelReleaser`]: deterministic
//!   multi-threaded bulk release over one shared [`PolicyIndex`], running on
//!   the persistent [`release::pool::ReleasePool`] (workers parked between
//!   bursts; single-lane batches run inline on the caller).
//! * [`budget`] — policy-aware privacy-budget allocation and sequential
//!   composition across release epochs.
//! * [`repair`] — policy feasibility under external constraints and minimal
//!   policy repair (the machinery behind dynamic policy updates).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
mod cache;
pub mod error;
pub mod index;
pub mod mech;
pub mod policy;
pub mod privacy;
pub mod release;
pub mod repair;
pub mod timeline;

pub use cache::CacheStats;
pub use error::PglpError;
pub use index::{PolicyIndex, SamplingTable};
pub use mech::{
    CellSampler, EuclideanExponential, GraphCalibratedLaplace, GraphExponential, IdentityMechanism,
    Mechanism, PlanarIsotropic, PlanarLaplace, SamplerMemo, UniformComponent,
};
pub use policy::LocationPolicyGraph;
pub use privacy::{audit_pglp, AuditReport};
pub use release::pool::ReleasePool;
pub use release::ParallelReleaser;
