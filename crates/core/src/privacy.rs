//! {ε, G}-location privacy as an *executable definition*.
//!
//! Def. 2.4 requires `Pr[A(s)=z] ≤ e^ε·Pr[A(s′)=z]` for every policy edge
//! `(s, s′)` and every output `z`. On a discrete location domain this is a
//! finite set of inequalities, so we can **audit** a mechanism rather than
//! merely trust its proof:
//!
//! * [`audit_pglp`] — exact audit over every edge, using the mechanism's
//!   closed-form output distribution when available and falling back to
//!   Monte-Carlo estimation otherwise.
//! * [`audit_lemma21`] — checks the Lemma 2.1 consequence: `∞`-neighbours
//!   at graph distance `d` are `ε·d`-indistinguishable.
//! * [`audit_geo_indistinguishability`] — checks Theorem 2.1's conclusion
//!   on `G1`-style policies: `ε·d_E`-indistinguishability with Euclidean
//!   distance measured in cell units.
//!
//! These audits are used three ways: unit tests (small grids, exact), the
//! `exp_policy_equivalence` experiment (Fig. 2 / Theorems 2.1–2.2), and as a
//! safety net in integration tests whenever a new mechanism/policy pairing
//! is introduced.

use crate::error::PglpError;
use crate::mech::Mechanism;
use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How to obtain output distributions during an audit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuditOptions {
    /// Monte-Carlo sample count per input location (used only when the
    /// mechanism has no closed-form distribution).
    pub mc_samples: usize,
    /// Multiplicative slack applied to `e^ε` for Monte-Carlo audits, to
    /// absorb estimation error. Ignored for exact audits.
    pub mc_slack: f64,
    /// Minimum per-cell count for a Monte-Carlo frequency to participate in
    /// a ratio (rarely-hit cells carry too much estimation noise).
    pub mc_min_count: usize,
    /// RNG seed for Monte-Carlo audits (audits are deterministic).
    pub seed: u64,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            mc_samples: 200_000,
            mc_slack: 1.3,
            mc_min_count: 200,
            seed: 0xBADA_55ED,
        }
    }
}

/// Result of a privacy audit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditReport {
    /// Mechanism under audit.
    pub mechanism: String,
    /// Policy graph name.
    pub policy: String,
    /// Privacy parameter audited against.
    pub eps: f64,
    /// Number of (ordered) location pairs checked.
    pub pairs_checked: usize,
    /// Largest observed `ln(Pr[A(s)=z] / Pr[A(s′)=z])` across all checked
    /// pairs and outputs.
    pub max_log_ratio: f64,
    /// The bound the worst pair was held to (`ε`, `ε·d`, or `ε·d_E`
    /// depending on the audit flavour — slack already folded in).
    pub bound_at_worst: f64,
    /// Pair achieving `max_log_ratio − bound` (the tightest margin).
    pub worst_pair: Option<(CellId, CellId)>,
    /// Whether every inequality held.
    pub satisfied: bool,
    /// `true` when closed-form distributions were used (no statistical
    /// slack involved).
    pub exact: bool,
}

/// Output distribution of `mech` on input `s`, exact when available,
/// otherwise a Monte-Carlo estimate with `opts` controls.
pub fn output_distribution(
    mech: &dyn Mechanism,
    policy: &LocationPolicyGraph,
    eps: f64,
    s: CellId,
    opts: &AuditOptions,
) -> Result<(HashMap<CellId, f64>, bool), PglpError> {
    if let Some(dist) = mech.output_distribution(policy, eps, s) {
        return Ok((dist.into_iter().collect(), true));
    }
    let mut rng = StdRng::seed_from_u64(opts.seed ^ (s.0 as u64).wrapping_mul(0x9E37_79B9));
    let mut counts: HashMap<CellId, usize> = HashMap::new();
    for _ in 0..opts.mc_samples {
        let z = mech.perturb(policy, eps, s, &mut rng)?;
        *counts.entry(z).or_insert(0) += 1;
    }
    let n = opts.mc_samples as f64;
    Ok((
        counts
            .into_iter()
            .filter(|&(_, c)| c >= opts.mc_min_count)
            .map(|(cell, c)| (cell, c as f64 / n))
            .collect(),
        false,
    ))
}

/// Max log-ratio between two distributions over the union of their supports.
///
/// For exact distributions, a cell present on one side but absent on the
/// other is an immediate `+∞` violation; Monte-Carlo estimates simply skip
/// such cells (their true probability may be below the counting floor).
fn max_log_ratio(pa: &HashMap<CellId, f64>, pb: &HashMap<CellId, f64>, exact: bool) -> f64 {
    let mut worst = f64::NEG_INFINITY;
    for (cell, &p) in pa {
        match pb.get(cell) {
            Some(&q) if q > 0.0 => {
                worst = worst.max((p / q).ln());
            }
            _ => {
                if exact && p > 1e-300 {
                    return f64::INFINITY;
                }
            }
        }
    }
    worst
}

/// Exact/Monte-Carlo audit of Def. 2.4 over **every policy edge**.
pub fn audit_pglp(
    mech: &dyn Mechanism,
    policy: &LocationPolicyGraph,
    eps: f64,
) -> Result<AuditReport, PglpError> {
    audit_pglp_with(mech, policy, eps, &AuditOptions::default())
}

/// [`audit_pglp`] with explicit options.
pub fn audit_pglp_with(
    mech: &dyn Mechanism,
    policy: &LocationPolicyGraph,
    eps: f64,
    opts: &AuditOptions,
) -> Result<AuditReport, PglpError> {
    crate::error::check_epsilon(eps)?;
    let mut report = AuditReport {
        mechanism: mech.name().to_string(),
        policy: policy.name().to_string(),
        eps,
        pairs_checked: 0,
        max_log_ratio: f64::NEG_INFINITY,
        bound_at_worst: f64::NAN,
        worst_pair: None,
        satisfied: true,
        exact: true,
    };
    // Cache distributions per distinct endpoint.
    let mut dists: HashMap<CellId, (HashMap<CellId, f64>, bool)> = HashMap::new();
    let edges: Vec<(u32, u32)> = policy.graph().edges().collect();
    for (a, b) in edges {
        let (sa, sb) = (CellId(a), CellId(b));
        for s in [sa, sb] {
            if let std::collections::hash_map::Entry::Vacant(e) = dists.entry(s) {
                let d = output_distribution(mech, policy, eps, s, opts)?;
                e.insert(d);
            }
        }
        let (pa, ea) = &dists[&sa];
        let (pb, eb) = &dists[&sb];
        let exact = *ea && *eb;
        report.exact &= exact;
        let bound = if exact {
            eps + 1e-9
        } else {
            eps + opts.mc_slack.ln()
        };
        // Check both directions.
        for (p, q, pair) in [(pa, pb, (sa, sb)), (pb, pa, (sb, sa))] {
            let lr = max_log_ratio(p, q, exact);
            report.pairs_checked += 1;
            // Track the tightest margin across pairs.
            if lr - bound
                > report.max_log_ratio
                    - if report.bound_at_worst.is_nan() {
                        f64::INFINITY
                    } else {
                        report.bound_at_worst
                    }
            {
                report.max_log_ratio = lr;
                report.bound_at_worst = bound;
                report.worst_pair = Some(pair);
            }
            if lr > bound {
                report.satisfied = false;
            }
        }
    }
    if report.worst_pair.is_none() {
        // Edgeless policy: vacuously satisfied.
        report.max_log_ratio = 0.0;
        report.bound_at_worst = eps;
    }
    Ok(report)
}

/// Audits the Lemma 2.1 consequence on explicit `∞`-neighbour pairs:
/// `ln ratio ≤ ε · d_G(a, b)`.
///
/// Only pairs in the same component are meaningful; cross-component pairs
/// are skipped (unconstrained by the policy).
pub fn audit_lemma21(
    mech: &dyn Mechanism,
    policy: &LocationPolicyGraph,
    eps: f64,
    pairs: &[(CellId, CellId)],
    opts: &AuditOptions,
) -> Result<AuditReport, PglpError> {
    crate::error::check_epsilon(eps)?;
    let mut report = AuditReport {
        mechanism: mech.name().to_string(),
        policy: policy.name().to_string(),
        eps,
        pairs_checked: 0,
        max_log_ratio: f64::NEG_INFINITY,
        bound_at_worst: f64::NAN,
        worst_pair: None,
        satisfied: true,
        exact: true,
    };
    let mut worst_margin = f64::NEG_INFINITY;
    for &(a, b) in pairs {
        let Some(d) = policy.distance(a, b) else {
            continue;
        };
        let (pa, ea) = output_distribution(mech, policy, eps, a, opts)?;
        let (pb, eb) = output_distribution(mech, policy, eps, b, opts)?;
        let exact = ea && eb;
        report.exact &= exact;
        let bound = eps * d as f64 + if exact { 1e-9 } else { opts.mc_slack.ln() };
        let lr = max_log_ratio(&pa, &pb, exact).max(max_log_ratio(&pb, &pa, exact));
        report.pairs_checked += 1;
        if lr - bound > worst_margin {
            worst_margin = lr - bound;
            report.max_log_ratio = lr;
            report.bound_at_worst = bound;
            report.worst_pair = Some((a, b));
        }
        if lr > bound {
            report.satisfied = false;
        }
    }
    Ok(report)
}

/// Audits Theorem 2.1's conclusion: under a `G1` policy, the mechanism is
/// ε-geo-indistinguishable, i.e. every pair `(a, b)` is
/// `ε·d_E(a, b)`-indistinguishable with `d_E` in **cell units**.
///
/// Checked over all same-component pairs of `cells` (pass a subsample for
/// large grids).
pub fn audit_geo_indistinguishability(
    mech: &dyn Mechanism,
    policy: &LocationPolicyGraph,
    eps: f64,
    cells: &[CellId],
    opts: &AuditOptions,
) -> Result<AuditReport, PglpError> {
    crate::error::check_epsilon(eps)?;
    let grid = policy.grid();
    let mut report = AuditReport {
        mechanism: mech.name().to_string(),
        policy: policy.name().to_string(),
        eps,
        pairs_checked: 0,
        max_log_ratio: f64::NEG_INFINITY,
        bound_at_worst: f64::NAN,
        worst_pair: None,
        satisfied: true,
        exact: true,
    };
    let mut worst_margin = f64::NEG_INFINITY;
    for (i, &a) in cells.iter().enumerate() {
        for &b in cells.iter().skip(i + 1) {
            if !policy.same_component(a, b) {
                continue;
            }
            let d_e = grid.distance(a, b) / grid.cell_size();
            let (pa, ea) = output_distribution(mech, policy, eps, a, opts)?;
            let (pb, eb) = output_distribution(mech, policy, eps, b, opts)?;
            let exact = ea && eb;
            report.exact &= exact;
            let bound = eps * d_e + if exact { 1e-9 } else { opts.mc_slack.ln() };
            let lr = max_log_ratio(&pa, &pb, exact).max(max_log_ratio(&pb, &pa, exact));
            report.pairs_checked += 1;
            if lr - bound > worst_margin {
                worst_margin = lr - bound;
                report.max_log_ratio = lr;
                report.bound_at_worst = bound;
                report.worst_pair = Some((a, b));
            }
            if lr > bound {
                report.satisfied = false;
            }
        }
    }
    Ok(report)
}

/// Total-variation distance between two output distributions — a utility
/// diagnostic used by the experiments (how much a policy change moves the
/// release distribution).
pub fn total_variation(pa: &HashMap<CellId, f64>, pb: &HashMap<CellId, f64>) -> f64 {
    let mut cells: Vec<CellId> = pa.keys().chain(pb.keys()).copied().collect();
    cells.sort_unstable();
    cells.dedup();
    0.5 * cells
        .into_iter()
        .map(|c| (pa.get(&c).unwrap_or(&0.0) - pb.get(&c).unwrap_or(&0.0)).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::{GraphExponential, IdentityMechanism, UniformComponent};
    use panda_geo::GridMap;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    #[test]
    fn gem_passes_exact_audit_on_all_presets() {
        let eps = 1.0;
        let presets = vec![
            LocationPolicyGraph::g1_geo_indistinguishability(grid()),
            LocationPolicyGraph::grid4(grid()),
            LocationPolicyGraph::partition(grid(), 2, 2),
            LocationPolicyGraph::complete(grid()),
        ];
        for p in presets {
            let report = audit_pglp(&GraphExponential, &p, eps).unwrap();
            assert!(report.exact);
            assert!(
                report.satisfied,
                "GEM failed audit on {}: {:?}",
                p.name(),
                report
            );
            assert!(report.max_log_ratio <= eps + 1e-9);
        }
    }

    #[test]
    fn identity_fails_audit_on_connected_policy() {
        let p = LocationPolicyGraph::grid4(grid());
        let report = audit_pglp(&IdentityMechanism, &p, 1.0).unwrap();
        assert!(!report.satisfied, "identity must violate PGLP");
        assert!(report.max_log_ratio.is_infinite());
    }

    #[test]
    fn identity_passes_on_isolated_policy() {
        let p = LocationPolicyGraph::isolated(grid());
        let report = audit_pglp(&IdentityMechanism, &p, 0.1).unwrap();
        assert!(report.satisfied, "no edges, nothing to violate");
        assert_eq!(report.pairs_checked, 0);
    }

    #[test]
    fn uniform_component_is_infinitely_private() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let report = audit_pglp(&UniformComponent, &p, 0.001).unwrap();
        assert!(report.satisfied);
        assert!(report.max_log_ratio.abs() < 1e-9);
    }

    #[test]
    fn lemma21_bound_on_gem() {
        let p = LocationPolicyGraph::grid4(grid());
        let g = p.grid().clone();
        let pairs = vec![
            (g.cell(0, 0), g.cell(3, 3)), // d_G = 6 in grid4
            (g.cell(0, 0), g.cell(2, 0)), // d_G = 2
            (g.cell(1, 1), g.cell(1, 2)), // d_G = 1
        ];
        let report =
            audit_lemma21(&GraphExponential, &p, 0.8, &pairs, &AuditOptions::default()).unwrap();
        assert!(report.satisfied, "{report:?}");
        assert_eq!(report.pairs_checked, 3);
    }

    #[test]
    fn theorem21_geo_ind_from_g1() {
        // {ε,G1}-privacy implies ε-geo-ind: check the GEM on G1.
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let cells: Vec<CellId> = p.grid().cells().collect();
        let report = audit_geo_indistinguishability(
            &GraphExponential,
            &p,
            1.0,
            &cells,
            &AuditOptions::default(),
        )
        .unwrap();
        assert!(report.satisfied, "{report:?}");
        assert!(report.pairs_checked > 100);
    }

    #[test]
    fn monte_carlo_audit_of_sampling_mechanism() {
        // Graph-Laplace has no closed form; MC audit with slack must pass.
        let p = LocationPolicyGraph::partition(GridMap::new(4, 2, 100.0), 2, 2);
        let opts = AuditOptions {
            mc_samples: 60_000,
            mc_slack: 1.5,
            mc_min_count: 300,
            seed: 99,
        };
        let report = audit_pglp_with(&crate::mech::GraphCalibratedLaplace, &p, 1.0, &opts).unwrap();
        assert!(!report.exact);
        assert!(report.satisfied, "{report:?}");
    }

    #[test]
    fn total_variation_basics() {
        let mut a = HashMap::new();
        a.insert(CellId(0), 0.5);
        a.insert(CellId(1), 0.5);
        let mut b = HashMap::new();
        b.insert(CellId(0), 1.0);
        assert!((total_variation(&a, &b) - 0.5).abs() < 1e-12);
        assert!(total_variation(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_epsilon() {
        let p = LocationPolicyGraph::isolated(grid());
        assert!(audit_pglp(&GraphExponential, &p, -1.0).is_err());
    }
}
