//! [`ParallelReleaser`]: deterministic multi-threaded bulk release.
//!
//! The PR-1 batch path ([`Mechanism::perturb_batch`]) amortises policy-graph
//! work through the [`PolicyIndex`] but still runs on one thread. This
//! module partitions a report batch into **fixed-size chunks** and fans the
//! chunks out over a crossbeam scoped-thread pool, with each chunk's RNG
//! stream split deterministically from one seed:
//!
//! * the chunk grid depends only on the batch length and
//!   [`ParallelReleaser::chunk_size`] — *never* on the thread count — so a
//!   fixed seed yields **bit-identical output on 1 thread or 64**;
//! * every chunk seeds its own `StdRng` via a SplitMix64-style mix of
//!   `(seed, chunk index)`, so streams are unrelated across chunks and
//!   reproducible in isolation;
//! * all threads share one [`PolicyIndex`] — its distribution, calibration
//!   and hull caches are concurrent, so the first thread to touch a
//!   `(mechanism, ε, cell)` key builds the table and the rest sample from
//!   it.
//!
//! The surveillance server consumes the output via
//! `Server::receive_batch`, which groups reports by shard before taking any
//! lock — together they form the parallel release engine the experiment
//! binaries and the simulation driver run on.

use crate::error::PglpError;
use crate::index::PolicyIndex;
use crate::mech::Mechanism;
use panda_geo::CellId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default chunk size: big enough to amortise thread hand-off, small enough
/// to load-balance a 256k-report batch over many threads.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// A deterministic parallel bulk-release driver. Cheap to construct; holds
/// no per-policy state (that lives in the [`PolicyIndex`]).
#[derive(Debug, Clone)]
pub struct ParallelReleaser {
    n_threads: usize,
    chunk_size: usize,
}

impl Default for ParallelReleaser {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelReleaser {
    /// A releaser using all available hardware parallelism.
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(n)
    }

    /// A releaser with an explicit thread count (≥ 1). The thread count
    /// affects wall-clock only, never the released cells.
    pub fn with_threads(n_threads: usize) -> Self {
        ParallelReleaser {
            n_threads: n_threads.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// Overrides the chunk size (≥ 1). Unlike the thread count, the chunk
    /// grid is part of the deterministic stream: changing it changes which
    /// RNG stream covers which report, and therefore the output.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Worker threads used per release call.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Reports per deterministic RNG chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Releases `locs` through `mech` under the indexed policy, using up to
    /// [`ParallelReleaser::n_threads`] threads. Outputs are positionally
    /// aligned with `locs` and **bit-identical for a fixed `(seed,
    /// chunk_size)` regardless of the thread count**.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Mechanism::perturb_batch`]. When several
    /// chunks fail, the error of the earliest failing chunk is returned
    /// (deterministic).
    pub fn release(
        &self,
        mech: &(dyn Mechanism + Sync),
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        seed: u64,
    ) -> Result<Vec<CellId>, PglpError> {
        let mut out = vec![CellId(0); locs.len()];
        if locs.is_empty() {
            return Ok(out);
        }
        let n_chunks = locs.len().div_ceil(self.chunk_size);
        let n_threads = self.n_threads.min(n_chunks);
        // One chunk of work: (chunk index, input cells, output slot).
        type Chunk<'a> = (usize, &'a [CellId], &'a mut [CellId]);
        // Deal chunks round-robin onto threads. The assignment affects only
        // which thread runs which chunk; the per-chunk RNG stream is a pure
        // function of (seed, chunk index).
        let mut lanes: Vec<Vec<Chunk<'_>>> = (0..n_threads).map(|_| Vec::new()).collect();
        for (i, (input, output)) in locs
            .chunks(self.chunk_size)
            .zip(out.chunks_mut(self.chunk_size))
            .enumerate()
        {
            lanes[i % n_threads].push((i, input, output));
        }
        let failures: Vec<(usize, PglpError)> = crossbeam::scope(|scope| {
            let handles: Vec<_> = lanes
                .into_iter()
                .map(|lane| {
                    scope.spawn(move |_| {
                        let mut errs = Vec::new();
                        for (i, input, output) in lane {
                            let mut rng = chunk_rng(seed, i as u64);
                            match mech.perturb_batch(index, eps, input, &mut rng) {
                                Ok(cells) => output.copy_from_slice(&cells),
                                Err(e) => errs.push((i, e)),
                            }
                        }
                        errs
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("release worker panicked"))
                .collect()
        })
        .expect("release scope panicked");
        match failures.into_iter().min_by_key(|&(i, _)| i) {
            Some((_, e)) => Err(e),
            None => Ok(out),
        }
    }
}

/// The RNG stream of chunk `chunk` under `seed`: a SplitMix64-style
/// finaliser over the pair, so nearby chunk indices (and nearby seeds) get
/// unrelated streams.
fn chunk_rng(seed: u64, chunk: u64) -> StdRng {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::{GraphExponential, UniformComponent};
    use crate::policy::LocationPolicyGraph;
    use panda_geo::GridMap;
    use rand::Rng;

    fn workload(n: usize) -> (PolicyIndex, Vec<CellId>) {
        let grid = GridMap::new(16, 16, 100.0);
        let policy = LocationPolicyGraph::partition(grid.clone(), 4, 4);
        let mut rng = StdRng::seed_from_u64(42);
        let locs: Vec<CellId> = (0..n)
            .map(|_| CellId(rng.gen_range(0..grid.n_cells())))
            .collect();
        (PolicyIndex::new(policy), locs)
    }

    #[test]
    fn output_is_bit_identical_across_thread_counts() {
        let (index, locs) = workload(10_000);
        let reference = ParallelReleaser::with_threads(1)
            .release(&GraphExponential, &index, 1.0, &locs, 7)
            .unwrap();
        for threads in [2, 3, 4, 8, 16] {
            let out = ParallelReleaser::with_threads(threads)
                .release(&GraphExponential, &index, 1.0, &locs, 7)
                .unwrap();
            assert_eq!(out, reference, "thread count {threads} changed output");
        }
    }

    #[test]
    fn seed_and_chunk_size_are_part_of_the_stream() {
        let (index, locs) = workload(5_000);
        let r = ParallelReleaser::with_threads(4);
        let a = r.release(&UniformComponent, &index, 1.0, &locs, 1).unwrap();
        let b = r.release(&UniformComponent, &index, 1.0, &locs, 2).unwrap();
        assert_ne!(a, b, "different seeds must differ");
        let c = r
            .clone()
            .with_chunk_size(512)
            .release(&UniformComponent, &index, 1.0, &locs, 1)
            .unwrap();
        assert_ne!(a, c, "chunk size is documented as part of the stream");
    }

    #[test]
    fn matches_sequential_perturb_batch_distribution() {
        // Not bit-equal to a single-rng run (streams differ), but each
        // output must stay in its component and the empirical distribution
        // must match the single-threaded batch path.
        let (index, _) = workload(0);
        let s = CellId(0);
        let locs = vec![s; 40_000];
        let par = ParallelReleaser::with_threads(4)
            .release(&GraphExponential, &index, 1.0, &locs, 11)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let seq = GraphExponential
            .perturb_batch(&index, 1.0, &locs, &mut rng)
            .unwrap();
        let census = |out: &[CellId]| {
            let mut m = std::collections::HashMap::new();
            for &z in out {
                *m.entry(z).or_insert(0usize) += 1;
            }
            m
        };
        let (cp, cs) = (census(&par), census(&seq));
        for (cell, &n_par) in &cp {
            assert!(index.policy().same_component(s, *cell));
            let n_seq = *cs.get(cell).unwrap_or(&0);
            let (fp, fs) = (
                n_par as f64 / locs.len() as f64,
                n_seq as f64 / locs.len() as f64,
            );
            assert!((fp - fs).abs() < 0.015, "cell {cell}: {fp} vs {fs}");
        }
    }

    #[test]
    fn empty_batch_and_error_propagation() {
        let (index, _) = workload(0);
        let r = ParallelReleaser::with_threads(4);
        assert_eq!(
            r.release(&GraphExponential, &index, 1.0, &[], 3).unwrap(),
            Vec::new()
        );
        // Invalid eps fails in every chunk; the error must surface.
        let locs = vec![CellId(0); 100];
        assert!(matches!(
            r.release(&GraphExponential, &index, 0.0, &locs, 3),
            Err(PglpError::InvalidEpsilon(_))
        ));
        // An out-of-domain cell in a late chunk also surfaces.
        let mut locs = vec![CellId(0); 9000];
        locs[8999] = CellId(u32::MAX);
        assert!(matches!(
            r.release(&GraphExponential, &index, 1.0, &locs, 3),
            Err(PglpError::LocationOutOfDomain(_))
        ));
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let (index, locs) = workload(10);
        let out = ParallelReleaser::with_threads(64)
            .release(&GraphExponential, &index, 1.0, &locs, 5)
            .unwrap();
        assert_eq!(out.len(), locs.len());
    }
}
