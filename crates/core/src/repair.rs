//! Policy feasibility and minimal repair.
//!
//! A policy graph promises indistinguishability between locations — but the
//! adversary may know side information that *excludes* some locations
//! outright (temporal reachability: "the user was within 2 cells of her
//! last release", an infected-venue visit, opening hours…). If a location's
//! policy neighbour is excluded, the promised plausible deniability
//! silently collapses: releasing anything reveals the user is *not* at the
//! excluded neighbour, and pairwise indistinguishability with it becomes
//! vacuous or, worse, misleading.
//!
//! Following the technical report's treatment of policies under constraints,
//! this module makes the collapse explicit and offers two repairs:
//!
//! * [`restrict`] — the honest weakening: keep only edges with both
//!   endpoints feasible. The result is what the adversary's knowledge
//!   leaves enforceable. [`protectable_cells`] reports which cells kept
//!   their *entire* 1-neighbourhood (their Def. 2.4 promises survive
//!   verbatim).
//! * [`repair_by_expansion`] — the conservative strengthening: grow the
//!   feasible set to the 1-hop closure, so every originally-promised edge
//!   incident to a truly-feasible cell survives. The released support is
//!   larger than strictly necessary, trading utility for the original
//!   promise.
//!
//! The contact-tracing protocol uses these to recompute per-user policies
//! when diagnoses update the infected-location set (§3.2).

use crate::policy::LocationPolicyGraph;
use panda_geo::CellId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Outcome summary of a policy repair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairSummary {
    /// Cells added to the feasible set (expansion) — empty for restriction.
    pub added_cells: Vec<CellId>,
    /// Number of policy edges dropped (restriction) — zero for expansion.
    pub dropped_edges: usize,
}

/// Cells of `feasible` whose **entire** policy 1-neighbourhood is feasible:
/// their Def. 2.4 indistinguishability promises survive the constraint
/// unchanged. Returned sorted.
pub fn protectable_cells(policy: &LocationPolicyGraph, feasible: &[CellId]) -> Vec<CellId> {
    let fset: BTreeSet<CellId> = feasible.iter().copied().collect();
    let mut out: Vec<CellId> = fset
        .iter()
        .copied()
        .filter(|&c| {
            policy
                .graph()
                .neighbors(c.0)
                .iter()
                .all(|&n| fset.contains(&CellId(n)))
        })
        .collect();
    out.sort_unstable();
    out
}

/// The restricted policy: edges with an infeasible endpoint are dropped and
/// infeasible cells are isolated. Returns the new policy and a summary.
pub fn restrict(
    policy: &LocationPolicyGraph,
    feasible: &[CellId],
) -> (LocationPolicyGraph, RepairSummary) {
    let fset: BTreeSet<CellId> = feasible.iter().copied().collect();
    let infeasible: Vec<CellId> = policy
        .grid()
        .cells()
        .filter(|c| !fset.contains(c))
        .collect();
    let restricted = policy.with_isolated(&infeasible);
    let dropped = policy.graph().n_edges() - restricted.graph().n_edges();
    (
        restricted,
        RepairSummary {
            added_cells: Vec::new(),
            dropped_edges: dropped,
        },
    )
}

/// The 1-hop closure repair: the feasible set is expanded with every policy
/// neighbour of a feasible cell, so no edge incident to the original
/// feasible set is lost. Returns the expanded feasible set (sorted) and a
/// summary listing the additions.
pub fn repair_by_expansion(
    policy: &LocationPolicyGraph,
    feasible: &[CellId],
) -> (Vec<CellId>, RepairSummary) {
    let mut expanded: BTreeSet<CellId> = feasible.iter().copied().collect();
    let mut added = Vec::new();
    for &c in feasible {
        for &n in policy.graph().neighbors(c.0) {
            let cell = CellId(n);
            if expanded.insert(cell) {
                added.push(cell);
            }
        }
    }
    added.sort_unstable();
    (
        expanded.into_iter().collect(),
        RepairSummary {
            added_cells: added,
            dropped_edges: 0,
        },
    )
}

/// Convenience predicate: `true` when every feasible cell is protectable,
/// i.e. the constraint costs nothing.
pub fn is_feasible_policy(policy: &LocationPolicyGraph, feasible: &[CellId]) -> bool {
    protectable_cells(policy, feasible).len() == {
        let mut f = feasible.to_vec();
        f.sort_unstable();
        f.dedup();
        f.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    #[test]
    fn protectable_requires_closed_neighborhood() {
        let p = LocationPolicyGraph::grid4(grid());
        let g = p.grid().clone();
        // A 2x2 corner block: inner corner (0,0) has both neighbours inside
        // only if (1,0) and (0,1) are present; (1,1) needs (2,1) & (1,2).
        let feas = vec![g.cell(0, 0), g.cell(1, 0), g.cell(0, 1), g.cell(1, 1)];
        let prot = protectable_cells(&p, &feas);
        assert_eq!(prot, vec![g.cell(0, 0)]);
    }

    #[test]
    fn protectable_whole_domain_is_everything() {
        let p = LocationPolicyGraph::grid4(grid());
        let all: Vec<CellId> = p.grid().cells().collect();
        assert_eq!(protectable_cells(&p, &all).len(), 16);
        assert!(is_feasible_policy(&p, &all));
    }

    #[test]
    fn restriction_drops_only_crossing_edges() {
        let p = LocationPolicyGraph::grid4(grid());
        let g = p.grid().clone();
        let feas = vec![g.cell(0, 0), g.cell(1, 0), g.cell(0, 1), g.cell(1, 1)];
        let (restricted, summary) = restrict(&p, &feas);
        // Inside the 2x2 block, 4 grid4 edges survive.
        assert_eq!(restricted.graph().n_edges(), 4);
        assert_eq!(summary.dropped_edges, p.graph().n_edges() - 4);
        assert!(restricted.are_neighbors(g.cell(0, 0), g.cell(1, 0)));
        assert!(restricted.is_isolated_cell(g.cell(3, 3)));
    }

    #[test]
    fn expansion_closure_property() {
        let p = LocationPolicyGraph::grid4(grid());
        let g = p.grid().clone();
        let feas = vec![g.cell(1, 1)];
        let (expanded, summary) = repair_by_expansion(&p, &feas);
        // 1-hop closure of an interior cell under grid4: self + 4.
        assert_eq!(expanded.len(), 5);
        assert_eq!(summary.added_cells.len(), 4);
        // Every original feasible cell is protectable w.r.t. the expansion.
        let prot = protectable_cells(&p, &expanded);
        assert!(prot.contains(&g.cell(1, 1)));
    }

    #[test]
    fn expansion_of_closed_set_adds_nothing() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let g = p.grid().clone();
        // A whole partition block is closed under the clique policy.
        let block = vec![g.cell(0, 0), g.cell(1, 0), g.cell(0, 1), g.cell(1, 1)];
        let (expanded, summary) = repair_by_expansion(&p, &block);
        assert_eq!(expanded.len(), 4);
        assert!(summary.added_cells.is_empty());
        assert!(is_feasible_policy(&p, &block));
    }

    #[test]
    fn restriction_then_protectable_is_consistent() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let g = p.grid().clone();
        let feas: Vec<CellId> = vec![
            g.cell(0, 0),
            g.cell(1, 0),
            g.cell(0, 1),
            g.cell(1, 1),
            g.cell(2, 0),
        ];
        let (restricted, _) = restrict(&p, &feas);
        // In the restricted policy every feasible cell's remaining
        // neighbours are feasible by construction.
        for &c in &feas {
            for &n in restricted.graph().neighbors(c.0) {
                assert!(feas.contains(&CellId(n)));
            }
        }
    }

    #[test]
    fn empty_feasible_set() {
        let p = LocationPolicyGraph::grid4(grid());
        assert!(protectable_cells(&p, &[]).is_empty());
        let (expanded, summary) = repair_by_expansion(&p, &[]);
        assert!(expanded.is_empty());
        assert!(summary.added_cells.is_empty());
        let (restricted, summary) = restrict(&p, &[]);
        assert!(restricted.graph().is_edgeless());
        assert_eq!(summary.dropped_edges, p.graph().n_edges());
    }
}
