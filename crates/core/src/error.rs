//! Error types for PGLP operations.

use panda_geo::CellId;

/// Errors surfaced by policy construction, mechanisms and budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum PglpError {
    /// ε must be strictly positive and finite.
    InvalidEpsilon(f64),
    /// A referenced location does not belong to the policy's grid domain.
    LocationOutOfDomain(CellId),
    /// The privacy budget ledger cannot cover a requested charge.
    BudgetExhausted {
        /// Budget requested by the caller.
        requested: f64,
        /// Budget still available.
        remaining: f64,
    },
    /// A policy construction received an empty location set.
    EmptyLocationSet,
    /// Grid dimensions of two artefacts that must share a domain disagree.
    DomainMismatch,
    /// The named mechanism has neither a `Mechanism::sampler` override nor
    /// a closed-form output distribution, so no resolved draw handle can be
    /// built — release per report instead.
    SamplerUnsupported(&'static str),
}

impl std::fmt::Display for PglpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PglpError::InvalidEpsilon(eps) => {
                write!(f, "epsilon must be positive and finite, got {eps}")
            }
            PglpError::LocationOutOfDomain(c) => {
                write!(f, "location {c} is outside the policy's grid domain")
            }
            PglpError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested {requested}, remaining {remaining}"
            ),
            PglpError::EmptyLocationSet => write!(f, "location set must be non-empty"),
            PglpError::DomainMismatch => write!(f, "grid domains do not match"),
            PglpError::SamplerUnsupported(mech) => {
                write!(f, "mechanism {mech} has no resolvable cell sampler")
            }
        }
    }
}

impl std::error::Error for PglpError {}

/// Validates an ε value.
pub fn check_epsilon(eps: f64) -> Result<(), PglpError> {
    if eps > 0.0 && eps.is_finite() {
        Ok(())
    } else {
        Err(PglpError::InvalidEpsilon(eps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert!(check_epsilon(1.0).is_ok());
        assert!(check_epsilon(1e-9).is_ok());
        assert_eq!(
            check_epsilon(0.0),
            Err(PglpError::InvalidEpsilon(0.0)).map(|_: ()| ())
        );
        assert!(check_epsilon(-1.0).is_err());
        assert!(check_epsilon(f64::NAN).is_err());
        assert!(check_epsilon(f64::INFINITY).is_err());
    }

    #[test]
    fn display_messages() {
        let e = PglpError::BudgetExhausted {
            requested: 2.0,
            remaining: 0.5,
        };
        assert!(e.to_string().contains("exhausted"));
        assert!(PglpError::LocationOutOfDomain(CellId(3))
            .to_string()
            .contains("c3"));
        assert!(PglpError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(PglpError::EmptyLocationSet
            .to_string()
            .contains("non-empty"));
        assert!(PglpError::DomainMismatch.to_string().contains("domains"));
    }
}
