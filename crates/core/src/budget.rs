//! Policy-aware privacy-budget allocation and composition.
//!
//! PANDA releases one perturbed location per epoch over a two-week window
//! (§3.2), so each user's privacy loss composes sequentially:
//! `ε_total = Σ_t ε_t` within a policy component. A server that naïvely
//! spends a fixed ε per epoch either runs out of budget or wastes it on
//! epochs whose policy is coarse (a coarse partition needs less ε for the
//! same utility than `G1`). This module provides:
//!
//! * [`BudgetLedger`] — per-user accounting with a hard cap; a charge that
//!   would exceed the cap is refused, never clamped silently.
//! * [`BudgetAllocator`] implementations: [`EvenSplit`], [`FixedPerEpoch`],
//!   [`GeometricDecay`] and the policy-aware [`DiameterProportional`], which
//!   sizes each epoch's ε by the *diameter* of the policy components — the
//!   quantity that governs the noise magnitude of every PGLP mechanism in
//!   [`crate::mech`].
//! * [`compose_sequential`] / [`compose_parallel`] — the two composition
//!   rules used by the analyses.

use crate::error::PglpError;
use crate::policy::LocationPolicyGraph;
use panda_graph::properties::component_diameters;
use serde::{Deserialize, Serialize};

/// One recorded privacy charge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Charge {
    /// Release epoch (timestamp index).
    pub epoch: u64,
    /// ε spent.
    pub eps: f64,
    /// Name of the policy graph in force.
    pub policy: String,
}

/// Per-user privacy-budget ledger with a hard total cap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetLedger {
    total: f64,
    spent: f64,
    charges: Vec<Charge>,
}

impl BudgetLedger {
    /// A ledger with the given lifetime budget.
    ///
    /// # Panics
    ///
    /// Panics when `total` is not positive and finite.
    pub fn new(total: f64) -> Self {
        assert!(total > 0.0 && total.is_finite(), "budget must be positive");
        BudgetLedger {
            total,
            spent: 0.0,
            charges: Vec::new(),
        }
    }

    /// Lifetime budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget spent so far (sequential composition).
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Records a charge of `eps` at `epoch` under `policy`.
    ///
    /// # Errors
    ///
    /// [`PglpError::BudgetExhausted`] when the charge does not fit;
    /// [`PglpError::InvalidEpsilon`] for non-positive ε. On error the ledger
    /// is unchanged.
    pub fn charge(&mut self, epoch: u64, policy: &str, eps: f64) -> Result<(), PglpError> {
        crate::error::check_epsilon(eps)?;
        if eps > self.remaining() + 1e-12 {
            return Err(PglpError::BudgetExhausted {
                requested: eps,
                remaining: self.remaining(),
            });
        }
        self.spent += eps;
        self.charges.push(Charge {
            epoch,
            eps,
            policy: policy.to_string(),
        });
        Ok(())
    }

    /// `true` when a charge of `eps` would be accepted.
    pub fn can_afford(&self, eps: f64) -> bool {
        eps > 0.0 && eps <= self.remaining() + 1e-12
    }

    /// The charge history, in order.
    pub fn history(&self) -> &[Charge] {
        &self.charges
    }
}

/// Sequential composition: total privacy loss of consecutive releases.
pub fn compose_sequential(epsilons: &[f64]) -> f64 {
    epsilons.iter().sum()
}

/// Parallel composition: privacy loss of releases on *disjoint* inputs
/// (e.g. different policy components) is the maximum, not the sum.
pub fn compose_parallel(epsilons: &[f64]) -> f64 {
    epsilons.iter().copied().fold(0.0, f64::max)
}

/// Strategy for choosing each epoch's ε from the remaining budget.
pub trait BudgetAllocator {
    /// Short identifier for experiment tables.
    fn name(&self) -> &'static str;

    /// ε to spend at `epoch`, given the remaining budget, the number of
    /// epochs still to cover (including this one) and the policy in force.
    ///
    /// Must return a value the ledger can afford (`≤ remaining`); zero means
    /// "skip this epoch" (release nothing).
    fn allocate(
        &self,
        epoch: u64,
        remaining_budget: f64,
        remaining_epochs: u32,
        policy: &LocationPolicyGraph,
    ) -> f64;
}

/// Spend the remaining budget evenly over the remaining epochs.
#[derive(Debug, Clone, Copy)]
pub struct EvenSplit;

impl BudgetAllocator for EvenSplit {
    fn name(&self) -> &'static str {
        "even-split"
    }

    fn allocate(
        &self,
        _epoch: u64,
        remaining: f64,
        remaining_epochs: u32,
        _p: &LocationPolicyGraph,
    ) -> f64 {
        if remaining_epochs == 0 {
            return 0.0;
        }
        remaining / remaining_epochs as f64
    }
}

/// Spend a fixed ε each epoch until the budget runs dry.
#[derive(Debug, Clone, Copy)]
pub struct FixedPerEpoch {
    /// ε per epoch.
    pub eps: f64,
}

impl BudgetAllocator for FixedPerEpoch {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn allocate(&self, _epoch: u64, remaining: f64, _re: u32, _p: &LocationPolicyGraph) -> f64 {
        if self.eps <= remaining {
            self.eps
        } else {
            0.0
        }
    }
}

/// Geometric decay: spend `fraction` of whatever remains, front-loading
/// accuracy (useful when early epochs matter most, e.g. fresh contact
/// tracing data).
#[derive(Debug, Clone, Copy)]
pub struct GeometricDecay {
    /// Fraction of the remaining budget to spend each epoch, in `(0, 1)`.
    pub fraction: f64,
}

impl BudgetAllocator for GeometricDecay {
    fn name(&self) -> &'static str {
        "geometric-decay"
    }

    fn allocate(&self, _epoch: u64, remaining: f64, _re: u32, _p: &LocationPolicyGraph) -> f64 {
        debug_assert!(self.fraction > 0.0 && self.fraction < 1.0);
        remaining * self.fraction
    }
}

/// **Policy-aware allocation**: ε proportional to the mean diameter of the
/// policy's non-singleton components.
///
/// Rationale: every mechanism's expected error scales with (component
/// diameter)/ε — a release under a coarse partition (`Ga`, small diameter
/// cliques) needs less ε to hit a target accuracy than a release under `G1`
/// (diameter = grid span). Normalising ε by diameter equalises expected
/// error across epochs with heterogeneous policies, which is precisely the
/// "new dimension to tune the utility-privacy trade-off" the paper
/// attributes to policy graphs (§1).
///
/// Allocation: `ε_t = base · D(G_t) / D_ref`, clamped to the per-epoch even
/// split so the ledger can never be drained early.
#[derive(Debug, Clone, Copy)]
pub struct DiameterProportional {
    /// ε granted per unit of normalised diameter.
    pub base: f64,
    /// Reference diameter (`D_ref`), e.g. the grid's G1 diameter.
    pub reference_diameter: f64,
}

impl DiameterProportional {
    /// Mean diameter over non-singleton components (singletons are exact
    /// releases and consume no budget).
    pub fn mean_component_diameter(policy: &LocationPolicyGraph) -> f64 {
        let diams = component_diameters(policy.graph());
        let non_trivial: Vec<u32> = diams.into_iter().filter(|&d| d > 0).collect();
        if non_trivial.is_empty() {
            0.0
        } else {
            non_trivial.iter().map(|&d| d as f64).sum::<f64>() / non_trivial.len() as f64
        }
    }
}

impl BudgetAllocator for DiameterProportional {
    fn name(&self) -> &'static str {
        "diameter-proportional"
    }

    fn allocate(
        &self,
        _epoch: u64,
        remaining: f64,
        remaining_epochs: u32,
        policy: &LocationPolicyGraph,
    ) -> f64 {
        debug_assert!(self.reference_diameter > 0.0);
        let d = Self::mean_component_diameter(policy);
        if d == 0.0 {
            return 0.0; // all-isolated policy: releases are free
        }
        let want = self.base * d / self.reference_diameter;
        let cap = if remaining_epochs == 0 {
            remaining
        } else {
            remaining / remaining_epochs as f64
        };
        want.min(cap).min(remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_geo::GridMap;

    fn grid() -> GridMap {
        GridMap::new(6, 6, 100.0)
    }

    #[test]
    fn ledger_accounting() {
        let mut l = BudgetLedger::new(1.0);
        assert!(l.charge(0, "G1", 0.4).is_ok());
        assert!(l.charge(1, "G1", 0.4).is_ok());
        assert!((l.spent() - 0.8).abs() < 1e-12);
        assert!((l.remaining() - 0.2).abs() < 1e-12);
        let err = l.charge(2, "G1", 0.4).unwrap_err();
        assert!(matches!(err, PglpError::BudgetExhausted { .. }));
        // Failed charge leaves the ledger unchanged.
        assert_eq!(l.history().len(), 2);
        assert!((l.spent() - 0.8).abs() < 1e-12);
        assert!(l.charge(2, "G1", 0.2).is_ok());
        assert!(l.remaining() < 1e-9);
    }

    #[test]
    fn ledger_rejects_bad_epsilon() {
        let mut l = BudgetLedger::new(1.0);
        assert!(l.charge(0, "x", 0.0).is_err());
        assert!(l.charge(0, "x", -0.5).is_err());
        assert!(l.charge(0, "x", f64::NAN).is_err());
    }

    #[test]
    fn composition_rules() {
        assert!((compose_sequential(&[0.1, 0.2, 0.3]) - 0.6).abs() < 1e-12);
        assert_eq!(compose_parallel(&[0.1, 0.5, 0.3]), 0.5);
        assert_eq!(compose_sequential(&[]), 0.0);
        assert_eq!(compose_parallel(&[]), 0.0);
    }

    #[test]
    fn even_split_exhausts_exactly() {
        let alloc = EvenSplit;
        let policy = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let mut ledger = BudgetLedger::new(2.0);
        let horizon = 10u32;
        for t in 0..horizon {
            let eps = alloc.allocate(t as u64, ledger.remaining(), horizon - t, &policy);
            ledger.charge(t as u64, policy.name(), eps).unwrap();
        }
        assert!(ledger.remaining() < 1e-9);
        // Even: all charges equal.
        let first = ledger.history()[0].eps;
        assert!(ledger
            .history()
            .iter()
            .all(|c| (c.eps - first).abs() < 1e-9));
    }

    #[test]
    fn fixed_stops_when_dry() {
        let alloc = FixedPerEpoch { eps: 0.3 };
        let policy = LocationPolicyGraph::grid4(grid());
        let mut ledger = BudgetLedger::new(1.0);
        let mut released = 0;
        for t in 0..10u32 {
            let eps = alloc.allocate(t as u64, ledger.remaining(), 10 - t, &policy);
            if eps > 0.0 {
                ledger.charge(t as u64, policy.name(), eps).unwrap();
                released += 1;
            }
        }
        assert_eq!(released, 3); // 3 × 0.3 ≤ 1.0 < 4 × 0.3
        assert!(ledger.spent() <= 1.0 + 1e-12);
    }

    #[test]
    fn geometric_decay_decreases() {
        let alloc = GeometricDecay { fraction: 0.5 };
        let policy = LocationPolicyGraph::grid4(grid());
        let mut ledger = BudgetLedger::new(1.0);
        let mut prev = f64::INFINITY;
        for t in 0..5u32 {
            let eps = alloc.allocate(t as u64, ledger.remaining(), 5 - t, &policy);
            assert!(eps < prev);
            prev = eps;
            ledger.charge(t as u64, policy.name(), eps).unwrap();
        }
        assert!(ledger.spent() < 1.0);
    }

    #[test]
    fn diameter_proportional_orders_policies() {
        // G1 over 6x6 has diameter 5; a 2x2 partition has diameter 1;
        // isolated has none. Allocation must order accordingly.
        let g1 = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let ga = LocationPolicyGraph::partition(grid(), 2, 2);
        let iso = LocationPolicyGraph::isolated(grid());
        let alloc = DiameterProportional {
            base: 1.0,
            reference_diameter: 5.0,
        };
        let big = 100.0; // effectively uncapped
        let e_g1 = alloc.allocate(0, big, 0, &g1);
        let e_ga = alloc.allocate(0, big, 0, &ga);
        let e_iso = alloc.allocate(0, big, 0, &iso);
        assert!(e_g1 > e_ga, "{e_g1} !> {e_ga}");
        assert_eq!(e_iso, 0.0);
        assert!((e_g1 - 1.0).abs() < 1e-12); // 5/5 * base
        assert!((e_ga - 0.2).abs() < 1e-12); // 1/5 * base
    }

    #[test]
    fn diameter_proportional_never_overspends() {
        let ga = LocationPolicyGraph::partition(grid(), 3, 3);
        let alloc = DiameterProportional {
            base: 10.0,
            reference_diameter: 1.0,
        };
        let mut ledger = BudgetLedger::new(1.0);
        for t in 0..20u32 {
            let eps = alloc.allocate(t as u64, ledger.remaining(), 20 - t, &ga);
            if eps > 0.0 {
                ledger.charge(t as u64, ga.name(), eps).unwrap();
            }
        }
        assert!(ledger.spent() <= 1.0 + 1e-9);
    }

    #[test]
    fn mean_component_diameter_values() {
        assert_eq!(
            DiameterProportional::mean_component_diameter(&LocationPolicyGraph::isolated(grid())),
            0.0
        );
        assert_eq!(
            DiameterProportional::mean_component_diameter(&LocationPolicyGraph::partition(
                grid(),
                2,
                2
            )),
            1.0
        );
        assert_eq!(
            DiameterProportional::mean_component_diameter(
                &LocationPolicyGraph::g1_geo_indistinguishability(grid())
            ),
            5.0
        );
    }
}
