//! Location policy graphs (paper Definitions 2.1–2.3) and the preset
//! policies of Figs. 2 and 4.
//!
//! A policy graph's nodes are **all** cells of a [`GridMap`]; its edges are
//! indistinguishability requirements. Node ids coincide with cell indices,
//! so `CellId(i)` is graph node `i` — no translation layer.

use crate::error::PglpError;
use panda_geo::{CellId, GridMap};
use panda_graph::distances::{ComponentDistances, DistanceLookup};
use panda_graph::{bfs, generators, ops, Graph};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Views an interned node-id slice as a cell-id slice.
///
/// Sound because [`CellId`] is `#[repr(transparent)]` over `u32`, which is
/// what `panda_graph::NodeId` is.
#[inline]
pub(crate) fn cells_of_nodes(nodes: &[panda_graph::NodeId]) -> &[CellId] {
    // SAFETY: CellId is #[repr(transparent)] over u32 = NodeId, so the two
    // slice types have identical layout.
    unsafe { std::slice::from_raw_parts(nodes.as_ptr().cast::<CellId>(), nodes.len()) }
}

/// A location policy graph `G = (S, E)` over a grid domain (Def. 2.1).
///
/// Immutable after construction; dynamic policy updates (contact tracing's
/// `Gc` transforms) build new values via [`LocationPolicyGraph::with_isolated`]
/// and friends. Connected components — the `∞`-neighbour classes of
/// Lemma 2.1 — are interned at construction; their all-pairs distance
/// tables are built **lazily per component on first `d_G` touch** (see
/// [`panda_graph::distances`]), so transient one-shot policies skip the
/// all-pairs BFS entirely while hot-path `d_G` queries stay table lookups
/// after warm-up. The component/distance state (which also owns the graph)
/// is shared through an [`Arc`], keeping `Clone` cheap.
#[derive(Debug, Clone)]
pub struct LocationPolicyGraph {
    grid: GridMap,
    dist: Arc<ComponentDistances>,
    name: String,
}

impl LocationPolicyGraph {
    /// Wraps an arbitrary graph as a policy over `grid`.
    ///
    /// # Panics
    ///
    /// Panics when the node count differs from the cell count.
    pub fn from_graph(grid: GridMap, graph: Graph, name: impl Into<String>) -> Self {
        Self::from_graph_with_budgets(
            grid,
            graph,
            name,
            panda_graph::distances::DEFAULT_MAX_TABLE_ENTRIES,
            panda_graph::distances::DEFAULT_ORACLE_ENTRIES_PER_NODE,
        )
    }

    /// Wraps an arbitrary graph as a policy with explicit distance-index
    /// budgets: `max_table_entries` caps dense per-component tables (k²
    /// cells), `oracle_entries_per_node` caps the hub-label oracle used
    /// above the dense budget (`0` disables it). For tests and benches that
    /// force a specific backend; production callers should use
    /// [`LocationPolicyGraph::from_graph`].
    ///
    /// # Panics
    ///
    /// Panics when the node count differs from the cell count.
    pub fn from_graph_with_budgets(
        grid: GridMap,
        graph: Graph,
        name: impl Into<String>,
        max_table_entries: usize,
        oracle_entries_per_node: usize,
    ) -> Self {
        assert_eq!(
            graph.n_nodes(),
            grid.n_cells(),
            "policy graph must have one node per grid cell"
        );
        let dist = Arc::new(ComponentDistances::from_graph_with_budgets(
            graph,
            max_table_entries,
            oracle_entries_per_node,
        ));
        LocationPolicyGraph {
            grid,
            dist,
            name: name.into(),
        }
    }

    // ------------------------------------------------------------------
    // Presets from the paper's figures
    // ------------------------------------------------------------------

    /// `G1` (Fig. 2 left): every location adjacent to its eight closest
    /// neighbours. By Theorem 2.1, {ε,G1}-location privacy implies
    /// ε-Geo-Indistinguishability (in cell units).
    pub fn g1_geo_indistinguishability(grid: GridMap) -> Self {
        let g = generators::grid8(grid.width(), grid.height());
        Self::from_graph(grid, g, "G1-geo-ind")
    }

    /// 4-neighbour variant of `G1` (Manhattan adjacency).
    pub fn grid4(grid: GridMap) -> Self {
        let g = generators::grid4(grid.width(), grid.height());
        Self::from_graph(grid, g, "G1-grid4")
    }

    /// `G2` (Fig. 2 right): complete graph over a δ-location set; all other
    /// cells are isolated. By Theorem 2.2, {ε,G2}-location privacy implies
    /// δ-Location Set Privacy.
    ///
    /// # Errors
    ///
    /// [`PglpError::EmptyLocationSet`] when `location_set` is empty,
    /// [`PglpError::LocationOutOfDomain`] for foreign cells.
    pub fn g2_location_set(grid: GridMap, location_set: &[CellId]) -> Result<Self, PglpError> {
        if location_set.is_empty() {
            return Err(PglpError::EmptyLocationSet);
        }
        let mut g = Graph::empty(grid.n_cells());
        for &c in location_set {
            if !grid.contains(c) {
                return Err(PglpError::LocationOutOfDomain(c));
            }
        }
        for (i, &a) in location_set.iter().enumerate() {
            for &b in location_set.iter().skip(i + 1) {
                if a != b {
                    g.add_edge(a.0, b.0);
                }
            }
        }
        Ok(Self::from_graph(grid, g, "G2-location-set"))
    }

    /// `Ga`/`Gb` (Fig. 4): partition the grid into `block_w × block_h` areas
    /// and require indistinguishability exactly *within* each area.
    ///
    /// Coarse blocks (e.g. districts) give `Ga` — suitable for location
    /// monitoring; finer blocks give `Gb` — suitable for epidemic analysis.
    pub fn partition(grid: GridMap, block_w: u32, block_h: u32) -> Self {
        let labels: Vec<u32> = (0..grid.n_cells())
            .map(|i| grid.block_of(CellId(i), block_w, block_h))
            .collect();
        let g = generators::partition_cliques(&labels);
        let name = format!("partition-{block_w}x{block_h}");
        Self::from_graph(grid, g, name)
    }

    /// The all-isolated policy: release everything exactly (no privacy).
    pub fn isolated(grid: GridMap) -> Self {
        let g = Graph::empty(grid.n_cells());
        Self::from_graph(grid, g, "isolated")
    }

    /// Complete policy over the whole domain: maximal indistinguishability.
    pub fn complete(grid: GridMap) -> Self {
        let g = generators::complete(grid.n_cells());
        Self::from_graph(grid, g, "complete")
    }

    /// The demo's "Random Policy Graph" (Fig. 5): choose `size` distinct
    /// cells uniformly, then connect them with an exact-edge-count random
    /// graph of the given `density`. All remaining cells stay isolated.
    ///
    /// # Panics
    ///
    /// Panics when `size` exceeds the cell count or density is outside
    /// `[0, 1]`.
    pub fn random<R: Rng + ?Sized>(grid: GridMap, size: u32, density: f64, rng: &mut R) -> Self {
        assert!(size <= grid.n_cells(), "size exceeds number of cells");
        let mut cells: Vec<u32> = (0..grid.n_cells()).collect();
        cells.shuffle(rng);
        cells.truncate(size as usize);
        let sub = generators::random_with_density(rng, size, density);
        let mut g = Graph::empty(grid.n_cells());
        for (a, b) in sub.edges() {
            g.add_edge(cells[a as usize], cells[b as usize]);
        }
        let name = format!("random-s{size}-d{density:.3}");
        Self::from_graph(grid, g, name)
    }

    /// `Gc` (Fig. 4 right): returns a copy of this policy with the given
    /// cells isolated — "allowing disclosure of the true location if the
    /// user accesses an infected location", keeping all other
    /// indistinguishability requirements intact.
    pub fn with_isolated(&self, cells: &[CellId]) -> Self {
        let nodes: Vec<u32> = cells.iter().map(|c| c.0).collect();
        let g = ops::isolate_nodes(self.graph(), &nodes);
        Self::from_graph(self.grid.clone(), g, format!("{}+isolated", self.name))
    }

    /// Returns a copy with extra indistinguishability edges added.
    pub fn with_edges(&self, extra: &[(CellId, CellId)]) -> Self {
        let pairs: Vec<(u32, u32)> = extra.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let g = ops::with_edges(self.graph(), &pairs);
        Self::from_graph(self.grid.clone(), g, format!("{}+edges", self.name))
    }

    // ------------------------------------------------------------------
    // Policy algebra: combining user and server requirements
    // ------------------------------------------------------------------

    /// The **union** policy: an edge whenever either input requires it —
    /// every promise of both policies is kept.
    ///
    /// This is how a user's personal policy composes with a server
    /// recommendation: the user accepts the recommendation *plus* keeps
    /// their own demands. A mechanism satisfying the union satisfies both
    /// inputs (its edge set is a superset of each).
    ///
    /// # Errors
    ///
    /// [`PglpError::DomainMismatch`] when the grids differ.
    pub fn union(&self, other: &LocationPolicyGraph) -> Result<Self, PglpError> {
        if self.grid != *other.grid() {
            return Err(PglpError::DomainMismatch);
        }
        let g = ops::union(self.graph(), other.graph());
        Ok(Self::from_graph(
            self.grid.clone(),
            g,
            format!("({})∪({})", self.name, other.name),
        ))
    }

    /// The **intersection** policy: an edge only where both inputs agree —
    /// the weakest requirement both parties consider acceptable.
    ///
    /// Used when the server must relax a policy to the portion both parties
    /// consented to; a mechanism satisfying either *input* automatically
    /// satisfies the intersection.
    ///
    /// # Errors
    ///
    /// [`PglpError::DomainMismatch`] when the grids differ.
    pub fn intersection(&self, other: &LocationPolicyGraph) -> Result<Self, PglpError> {
        if self.grid != *other.grid() {
            return Err(PglpError::DomainMismatch);
        }
        let mut g = Graph::empty(self.grid.n_cells());
        for (a, b) in self.graph().edges() {
            if other.graph().has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
        Ok(Self::from_graph(
            self.grid.clone(),
            g,
            format!("({})∩({})", self.name, other.name),
        ))
    }

    /// `true` when this policy is at least as strong as `other`: every edge
    /// `other` requires is also required here (so any mechanism satisfying
    /// `self` satisfies `other`). Grids must match.
    pub fn is_at_least_as_strict_as(&self, other: &LocationPolicyGraph) -> bool {
        self.grid == *other.grid()
            && other
                .graph()
                .edges()
                .all(|(a, b)| self.graph().has_edge(a, b))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The grid domain `S`.
    #[inline]
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// The underlying indistinguishability graph (owned by the shared
    /// component/distance index).
    #[inline]
    pub fn graph(&self) -> &Graph {
        self.dist.graph()
    }

    /// Human-readable policy name (used in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of locations in the domain.
    pub fn n_locations(&self) -> u32 {
        self.grid.n_cells()
    }

    /// Edge density of the policy graph (the Fig. 5 "Density" readout).
    pub fn density(&self) -> f64 {
        panda_graph::properties::density(self.graph())
    }

    // ------------------------------------------------------------------
    // Paper Definitions 2.2 / 2.3 and Lemma 2.1
    // ------------------------------------------------------------------

    /// `d_G(a, b)` (Def. 2.2): shortest-path distance in the policy graph,
    /// or `None` when `a` and `b` are not `∞`-neighbours.
    ///
    /// O(1) table lookup for components within the precomputed-index budget;
    /// BFS only for oversized components.
    pub fn distance(&self, a: CellId, b: CellId) -> Option<u32> {
        match self.dist.distance(a.0, b.0) {
            DistanceLookup::DifferentComponents => None,
            DistanceLookup::Known(d) => Some(d),
            DistanceLookup::NotIndexed => {
                let d = bfs::shortest_path_len(self.graph(), a.0, b.0);
                debug_assert_ne!(d, bfs::INFINITE);
                Some(d)
            }
        }
    }

    /// `N^k(s)` (Def. 2.3): all cells within `k` hops of `s`, including `s`.
    pub fn k_neighbors(&self, s: CellId, k: u32) -> Vec<CellId> {
        bfs::k_neighbors(self.graph(), s.0, k)
            .into_iter()
            .map(CellId)
            .collect()
    }

    /// `true` when `{a, b}` is a policy edge (1-neighbours, the pairs bound
    /// by Def. 2.4 directly).
    pub fn are_neighbors(&self, a: CellId, b: CellId) -> bool {
        self.graph().has_edge(a.0, b.0)
    }

    /// `true` when `a` and `b` are `∞`-neighbours (same component).
    pub fn same_component(&self, a: CellId, b: CellId) -> bool {
        self.dist.same_component(a.0, b.0)
    }

    /// Component index of a cell.
    pub fn component_of(&self, c: CellId) -> u32 {
        self.dist.component_of(c.0)
    }

    /// All cells in the component of `c` (sorted), as an interned slice —
    /// the support a mechanism may release when the true location is `c`.
    /// No allocation; prefer this over
    /// [`LocationPolicyGraph::component_cells`] on hot paths.
    #[inline]
    pub fn component_slice(&self, c: CellId) -> &[CellId] {
        cells_of_nodes(self.dist.members_of(c.0))
    }

    /// All cells in the component of `c` (sorted), as an owned `Vec`.
    pub fn component_cells(&self, c: CellId) -> Vec<CellId> {
        self.component_slice(c).to_vec()
    }

    /// Number of connected components.
    pub fn n_components(&self) -> u32 {
        self.dist.n_components()
    }

    /// The shared component/distance index built at construction.
    #[inline]
    pub fn distance_index(&self) -> &Arc<ComponentDistances> {
        &self.dist
    }

    /// `true` when the cell is an isolated node — releasable exactly
    /// (Lemma 2.1's extreme case).
    pub fn is_isolated_cell(&self, c: CellId) -> bool {
        self.graph().is_isolated(c.0)
    }

    /// The indistinguishability level Lemma 2.1 requires between `a` and
    /// `b` at privacy level `eps`: `ε · d_G(a,b)`, or `None` when
    /// unconstrained (different components).
    pub fn required_indistinguishability(&self, eps: f64, a: CellId, b: CellId) -> Option<f64> {
        self.distance(a, b).map(|d| eps * d as f64)
    }

    /// Distances from `s` to every cell of its component in member-slice
    /// order, written into `out` (resized to the component size). Served
    /// from the distance index — a dense-row copy or one hub-label join —
    /// with a single-BFS fallback for unindexed components. Returns `false`
    /// (leaving `out` empty) only when the component exceeds 65535 cells
    /// *and* is unindexed, i.e. distances may not fit `u16`.
    ///
    /// This is the row primitive behind `PolicyIndex`'s distance-row cache:
    /// every `(mechanism, ε)` pair over the same cell reuses one row.
    pub fn component_row_u16(&self, s: CellId, out: &mut Vec<u16>) -> bool {
        if self.dist.row_into(s.0, out) {
            return true;
        }
        let members = self.dist.members_of(s.0);
        if members.len() > usize::from(u16::MAX) {
            out.clear();
            return false;
        }
        let dist = bfs::bfs_distances(self.graph(), s.0);
        out.clear();
        out.extend(members.iter().map(|&v| {
            debug_assert_ne!(dist[v as usize], bfs::INFINITE);
            // Fits: eccentricity < k ≤ u16::MAX (checked above).
            dist[v as usize] as u16
        }));
        true
    }

    /// Distances from `s` to every cell of its component, as `(cell, d_G)`
    /// pairs sorted by cell id. The workhorse of the graph-exponential
    /// mechanism — served from the distance index (dense row copy or
    /// hub-label join, no BFS) except for unindexed components.
    pub fn component_distances(&self, s: CellId) -> Vec<(CellId, u32)> {
        let mut row = Vec::new();
        if self.component_row_u16(s, &mut row) {
            self.component_slice(s)
                .iter()
                .zip(&row)
                .map(|(&c, &d)| (c, u32::from(d)))
                .collect()
        } else {
            // Gigantic unindexed component: distances may exceed u16.
            let dist = bfs::bfs_distances(self.graph(), s.0);
            dist.into_iter()
                .enumerate()
                .filter(|&(_, d)| d != bfs::INFINITE)
                .map(|(i, d)| (CellId(i as u32), d))
                .collect()
        }
    }

    /// Validates that a cell belongs to the domain.
    pub fn check_cell(&self, c: CellId) -> Result<(), PglpError> {
        if self.grid.contains(c) {
            Ok(())
        } else {
            Err(PglpError::LocationOutOfDomain(c))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    #[test]
    fn g1_matches_grid8_adjacency() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let g = p.grid().clone();
        let c = g.cell(1, 1);
        for n in g.neighbors8(c) {
            assert!(p.are_neighbors(c, n));
        }
        assert!(!p.are_neighbors(g.cell(0, 0), g.cell(2, 0)));
        assert_eq!(p.n_components(), 1);
        assert_eq!(p.name(), "G1-geo-ind");
    }

    #[test]
    fn g1_distance_is_chebyshev() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let g = p.grid().clone();
        assert_eq!(p.distance(g.cell(0, 0), g.cell(3, 2)), Some(3));
        assert_eq!(p.distance(g.cell(0, 0), g.cell(0, 0)), Some(0));
    }

    #[test]
    fn g2_complete_over_subset() {
        let g = grid();
        let set = vec![g.cell(0, 0), g.cell(1, 1), g.cell(3, 3)];
        let p = LocationPolicyGraph::g2_location_set(g.clone(), &set).unwrap();
        assert!(p.are_neighbors(set[0], set[1]));
        assert!(p.are_neighbors(set[0], set[2]));
        assert!(p.is_isolated_cell(g.cell(2, 2)));
        // Components: one 3-clique + 13 singletons.
        assert_eq!(p.n_components(), 14);
    }

    #[test]
    fn g2_rejects_bad_input() {
        assert_eq!(
            LocationPolicyGraph::g2_location_set(grid(), &[]).unwrap_err(),
            PglpError::EmptyLocationSet
        );
        assert_eq!(
            LocationPolicyGraph::g2_location_set(grid(), &[CellId(999)]).unwrap_err(),
            PglpError::LocationOutOfDomain(CellId(999))
        );
    }

    #[test]
    fn partition_policy_components_are_blocks() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        assert_eq!(p.n_components(), 4);
        let g = p.grid().clone();
        assert!(p.are_neighbors(g.cell(0, 0), g.cell(1, 1)));
        assert!(!p.same_component(g.cell(0, 0), g.cell(2, 0)));
        // Every pair in a block is 1 hop (clique).
        assert_eq!(p.distance(g.cell(0, 0), g.cell(1, 1)), Some(1));
    }

    #[test]
    fn isolated_and_complete_extremes() {
        let p0 = LocationPolicyGraph::isolated(grid());
        assert_eq!(p0.n_components(), 16);
        assert!(p0.grid().cells().all(|c| p0.is_isolated_cell(c)));
        assert_eq!(p0.density(), 0.0);

        let p1 = LocationPolicyGraph::complete(grid());
        assert_eq!(p1.n_components(), 1);
        assert_eq!(p1.density(), 1.0);
        assert_eq!(p1.distance(CellId(0), CellId(15)), Some(1));
    }

    #[test]
    fn random_policy_size_and_density() {
        let mut rng = SmallRng::seed_from_u64(42);
        let p = LocationPolicyGraph::random(grid(), 8, 0.5, &mut rng);
        let expect_edges = (0.5_f64 * (8.0 * 7.0 / 2.0)).floor() as usize;
        assert_eq!(p.graph().n_edges(), expect_edges);
        // At least 16 - 8 cells stay isolated.
        let isolated = p.grid().cells().filter(|&c| p.is_isolated_cell(c)).count();
        assert!(isolated >= 8);
    }

    #[test]
    fn with_isolated_is_gc_transform() {
        let p = LocationPolicyGraph::g1_geo_indistinguishability(grid());
        let g = p.grid().clone();
        let infected = vec![g.cell(1, 1), g.cell(2, 2)];
        let gc = p.with_isolated(&infected);
        assert!(gc.is_isolated_cell(infected[0]));
        assert!(gc.is_isolated_cell(infected[1]));
        // Untouched edges survive.
        assert!(gc.are_neighbors(g.cell(0, 3), g.cell(1, 3)));
        // Original policy unchanged.
        assert!(!p.is_isolated_cell(infected[0]));
    }

    #[test]
    fn with_edges_adds_requirements() {
        let p = LocationPolicyGraph::isolated(grid());
        let p2 = p.with_edges(&[(CellId(0), CellId(5))]);
        assert!(p2.are_neighbors(CellId(0), CellId(5)));
        assert_eq!(p2.n_components(), 15);
    }

    #[test]
    fn k_neighbors_definition() {
        let p = LocationPolicyGraph::grid4(grid());
        let g = p.grid().clone();
        let n1 = p.k_neighbors(g.cell(1, 1), 1);
        assert_eq!(n1.len(), 5); // self + 4 neighbours
        assert!(n1.contains(&g.cell(1, 1)));
        let all = p.k_neighbors(g.cell(0, 0), u32::MAX);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn required_indistinguishability_scales_with_distance() {
        let p = LocationPolicyGraph::grid4(grid());
        let g = p.grid().clone();
        let r = p
            .required_indistinguishability(0.5, g.cell(0, 0), g.cell(2, 0))
            .unwrap();
        assert_eq!(r, 1.0); // d_G = 2, eps*d = 0.5*2
        let iso = LocationPolicyGraph::isolated(g.clone());
        assert_eq!(
            iso.required_indistinguishability(0.5, g.cell(0, 0), g.cell(1, 0)),
            None
        );
    }

    #[test]
    fn component_distances_cover_component() {
        let p = LocationPolicyGraph::partition(grid(), 2, 2);
        let g = p.grid().clone();
        let cd = p.component_distances(g.cell(0, 0));
        assert_eq!(cd.len(), 4);
        assert!(cd.iter().all(|&(_, d)| d <= 1));
        assert!(cd.contains(&(g.cell(0, 0), 0)));
    }

    #[test]
    fn check_cell_domain() {
        let p = LocationPolicyGraph::isolated(grid());
        assert!(p.check_cell(CellId(15)).is_ok());
        assert!(p.check_cell(CellId(16)).is_err());
    }

    #[test]
    #[should_panic(expected = "one node per grid cell")]
    fn from_graph_size_mismatch_panics() {
        LocationPolicyGraph::from_graph(grid(), Graph::empty(5), "bad");
    }

    #[test]
    fn union_keeps_all_promises() {
        let ga = LocationPolicyGraph::partition(grid(), 2, 2);
        let g1 = LocationPolicyGraph::grid4(grid());
        let u = ga.union(&g1).unwrap();
        assert!(u.is_at_least_as_strict_as(&ga));
        assert!(u.is_at_least_as_strict_as(&g1));
        assert!(u.graph().n_edges() <= ga.graph().n_edges() + g1.graph().n_edges());
    }

    #[test]
    fn intersection_is_weaker_than_both() {
        let ga = LocationPolicyGraph::partition(grid(), 2, 2);
        let g1 = LocationPolicyGraph::grid4(grid());
        let i = ga.intersection(&g1).unwrap();
        assert!(ga.is_at_least_as_strict_as(&i));
        assert!(g1.is_at_least_as_strict_as(&i));
        // Shared edges survive: horizontally adjacent cells in one block.
        let g = ga.grid().clone();
        assert!(i.are_neighbors(g.cell(0, 0), g.cell(1, 0)));
        // Diagonal block edges are not in grid4: dropped.
        assert!(!i.are_neighbors(g.cell(0, 0), g.cell(1, 1)));
    }

    #[test]
    fn algebra_identities() {
        let p = LocationPolicyGraph::grid4(grid());
        let iso = LocationPolicyGraph::isolated(grid());
        // p ∪ ∅ = p; p ∩ ∅ = ∅.
        assert_eq!(
            p.union(&iso).unwrap().graph().n_edges(),
            p.graph().n_edges()
        );
        assert!(p.intersection(&iso).unwrap().graph().is_edgeless());
        // Self-comparison.
        assert!(p.is_at_least_as_strict_as(&p));
        assert!(p.is_at_least_as_strict_as(&iso));
        assert!(!iso.is_at_least_as_strict_as(&p));
    }

    #[test]
    fn algebra_rejects_domain_mismatch() {
        let p = LocationPolicyGraph::grid4(grid());
        let other = LocationPolicyGraph::grid4(GridMap::new(5, 5, 100.0));
        assert_eq!(p.union(&other).unwrap_err(), PglpError::DomainMismatch);
        assert_eq!(
            p.intersection(&other).unwrap_err(),
            PglpError::DomainMismatch
        );
        assert!(!p.is_at_least_as_strict_as(&other));
    }
}
