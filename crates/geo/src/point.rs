//! Plane points with the small amount of vector algebra the workspace needs.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in the Euclidean plane.
///
/// `Point` doubles as a 2-vector: subtraction of two points yields the
/// displacement vector between them, and scalar multiplication scales it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate ("east" in the paper's figures).
    pub x: f64,
    /// Vertical coordinate ("north" in the paper's figures).
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Dot product of `self` and `other` viewed as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z-component of the 3-D cross product).
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm of `self` viewed as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Unit vector in the direction of `self`.
    ///
    /// Returns `None` for the zero vector (there is no direction to
    /// normalise).
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// The midpoint of the segment from `self` to `other`.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// `true` when both coordinates are finite (not NaN / infinite).
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison by `(x, y)`.
    ///
    /// A total order used by the convex-hull construction; NaN coordinates
    /// are rejected by debug assertion (geometry never produces them).
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        debug_assert!(self.is_finite() && other.is_finite());
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Point::new(3.0, 4.0);
        let b = Point::new(-1.0, 2.0);
        assert_eq!(a + b, Point::new(2.0, 6.0));
        assert_eq!(a - b, Point::new(4.0, 2.0));
        assert_eq!(a * 2.0, Point::new(6.0, 8.0));
        assert_eq!(a / 2.0, Point::new(1.5, 2.0));
        assert_eq!(-a, Point::new(-3.0, -4.0));
    }

    #[test]
    fn norm_and_distance() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.distance(Point::ORIGIN), 5.0);
        assert_eq!(Point::ORIGIN.distance_sq(a), 25.0);
    }

    #[test]
    fn dot_and_cross() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert_eq!(e1.dot(e2), 0.0);
        assert_eq!(e1.cross(e2), 1.0);
        assert_eq!(e2.cross(e1), -1.0);
    }

    #[test]
    fn normalized_unit_vector() {
        let v = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point::ORIGIN.normalized().is_none());
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Point::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((v.x - 0.0).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Point::new(2.5, -1.5);
        for k in 0..8 {
            let r = v.rotated(k as f64 * 0.7);
            assert!((r.norm() - v.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
    }

    #[test]
    fn lexicographic_order() {
        use std::cmp::Ordering;
        let a = Point::new(1.0, 5.0);
        let b = Point::new(1.0, 6.0);
        let c = Point::new(2.0, 0.0);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(b.lex_cmp(&c), Ordering::Less);
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
    }
}
