//! Convex polygons: the geometry of K-norm noise.
//!
//! The K-norm mechanism samples noise with density `∝ exp(−ε‖z‖_K)` where
//! `‖·‖_K` is the Minkowski norm of the sensitivity hull `K`. This module
//! provides the polygon type with everything that sampler needs: containment,
//! Minkowski norm, linear transforms, the covariance of the uniform
//! distribution over the polygon (for the isotropic transform) and uniform
//! sampling.

use crate::hull::convex_hull;
use crate::mat2::Mat2;
use crate::point::Point;
use crate::sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of a convex hull, distinguishing degenerate cases.
///
/// Policy-graph components with a single location, or with all locations
/// collinear, produce degenerate sensitivity hulls; the PIM implementation
/// handles each variant separately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HullShape {
    /// All input points coincide.
    Point(Point),
    /// All input points are collinear; the two extremes are stored.
    Segment(Point, Point),
    /// A proper (positive-area) convex polygon.
    Polygon(ConvexPolygon),
}

/// A convex polygon with vertices in counter-clockwise order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Builds the convex hull of `points` and classifies its shape.
    pub fn hull_of(points: &[Point]) -> HullShape {
        let hull = convex_hull(points);
        match hull.len() {
            0 => HullShape::Point(Point::ORIGIN),
            1 => HullShape::Point(hull[0]),
            2 => HullShape::Segment(hull[0], hull[1]),
            _ => HullShape::Polygon(ConvexPolygon { vertices: hull }),
        }
    }

    /// Creates a polygon from vertices **already known** to be a CCW convex
    /// hull. Verified in debug builds.
    pub fn from_ccw_vertices(vertices: Vec<Point>) -> Self {
        debug_assert!(vertices.len() >= 3, "polygon needs >= 3 vertices");
        #[cfg(debug_assertions)]
        for i in 0..vertices.len() {
            let a = vertices[i];
            let b = vertices[(i + 1) % vertices.len()];
            let c = vertices[(i + 2) % vertices.len()];
            debug_assert!(
                (b - a).cross(c - a) > 0.0,
                "vertices must be strictly convex CCW"
            );
        }
        ConvexPolygon { vertices }
    }

    /// The vertices in CCW order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false` (a polygon has at least three vertices); provided for
    /// API completeness with the usual `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Polygon area via the shoelace formula (positive, since CCW).
    pub fn area(&self) -> f64 {
        let mut twice = 0.0;
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            twice += a.cross(b);
        }
        twice * 0.5
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.vertices.len() {
            sum += self.vertices[i].distance(self.vertices[(i + 1) % self.vertices.len()]);
        }
        sum
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut twice_area = 0.0;
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            let w = a.cross(b);
            twice_area += w;
            cx += (a.x + b.x) * w;
            cy += (a.y + b.y) * w;
        }
        Point::new(cx / (3.0 * twice_area), cy / (3.0 * twice_area))
    }

    /// `true` when `p` lies inside or on the boundary (within `1e-9` slack).
    pub fn contains(&self, p: Point) -> bool {
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            if (b - a).cross(p - a) < -1e-9 {
                return false;
            }
        }
        true
    }

    /// Minkowski norm `‖p‖_K = inf { r ≥ 0 : p ∈ r·K }` of this polygon
    /// viewed as a norm ball.
    ///
    /// Requires the origin strictly inside the polygon (true for sensitivity
    /// hulls, which are origin-symmetric with positive area). Returns
    /// `f64::INFINITY` if the ray from the origin through `p` never exits the
    /// polygon (origin outside — a caller bug flagged by debug assertion).
    pub fn minkowski_norm(&self, p: Point) -> f64 {
        debug_assert!(self.contains(Point::ORIGIN), "origin must lie inside K");
        if p.norm_sq() == 0.0 {
            return 0.0;
        }
        // Find t > 0 minimal with t·p on an edge; then ‖p‖_K = 1/t.
        let mut best_t = f64::INFINITY;
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            // Solve t·p = a + s·(b−a), 0 ≤ s ≤ 1.
            let e = b - a;
            let denom = p.cross(e);
            if denom.abs() < 1e-15 {
                continue; // ray parallel to edge
            }
            let t = a.cross(e) / denom;
            let s = a.cross(p) / denom;
            if t > 1e-15 && (-1e-9..=1.0 + 1e-9).contains(&s) {
                best_t = best_t.min(t);
            }
        }
        if best_t.is_finite() {
            1.0 / best_t
        } else {
            f64::INFINITY
        }
    }

    /// Applies a linear map to every vertex. If the map reverses orientation
    /// (negative determinant) the vertex order is flipped to stay CCW.
    ///
    /// Returns `None` when the map is singular (the image degenerates).
    pub fn transform(&self, m: &Mat2) -> Option<ConvexPolygon> {
        if m.det().abs() < 1e-300 {
            return None;
        }
        let mut vertices: Vec<Point> = self.vertices.iter().map(|&v| m.apply(v)).collect();
        if m.det() < 0.0 {
            vertices.reverse();
        }
        Some(ConvexPolygon { vertices })
    }

    /// Uniformly scales the polygon about the origin.
    pub fn scaled(&self, s: f64) -> ConvexPolygon {
        ConvexPolygon {
            vertices: self.vertices.iter().map(|&v| v * s).collect(),
        }
    }

    /// Covariance matrix of the **uniform distribution** over the polygon.
    ///
    /// Computed exactly by fan triangulation: for a triangle with vertices
    /// `v0, v1, v2` and area `A`, the second moment about the origin is
    /// `(A/12)·(Σ vᵢvᵢᵀ + (Σ vᵢ)(Σ vᵢ)ᵀ)`. PIM whitens the sensitivity hull
    /// with the inverse square root of this matrix (isotropic position).
    pub fn covariance(&self) -> Mat2 {
        let v0 = self.vertices[0];
        let mut area_total = 0.0;
        let mut m = Mat2::new(0.0, 0.0, 0.0, 0.0);
        for i in 1..self.vertices.len() - 1 {
            let v1 = self.vertices[i];
            let v2 = self.vertices[i + 1];
            let area = 0.5 * (v1 - v0).cross(v2 - v0);
            let s = v0 + v1 + v2;
            let sum_outer = outer(v0) + outer(v1) + outer(v2) + outer_of(s, s);
            m = m + sum_outer * (area / 12.0);
            area_total += area;
        }
        let mu = self.centroid();
        let second = m * (1.0 / area_total);
        second - outer_of(mu, mu)
    }

    /// Samples a point uniformly from the polygon.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        // Fan triangulation, area-weighted triangle choice.
        let v0 = self.vertices[0];
        let mut areas = Vec::with_capacity(self.vertices.len() - 2);
        let mut total = 0.0;
        for i in 1..self.vertices.len() - 1 {
            let a = 0.5 * (self.vertices[i] - v0).cross(self.vertices[i + 1] - v0);
            total += a;
            areas.push(total);
        }
        let u = rng.gen_range(0.0..total);
        let k = areas.partition_point(|&acc| acc < u);
        sample::uniform_in_triangle(rng, v0, self.vertices[k + 1], self.vertices[k + 2])
    }

    /// Radius of the smallest origin-centred disk containing the polygon.
    pub fn bounding_radius(&self) -> f64 {
        self.vertices
            .iter()
            .map(|v| v.norm())
            .fold(0.0_f64, f64::max)
    }
}

#[inline]
fn outer(v: Point) -> Mat2 {
    outer_of(v, v)
}

#[inline]
fn outer_of(a: Point, b: Point) -> Mat2 {
    Mat2::new(a.x * b.x, a.x * b.y, a.y * b.x, a.y * b.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn unit_square() -> ConvexPolygon {
        match ConvexPolygon::hull_of(&[
            Point::new(-1.0, -1.0),
            Point::new(1.0, -1.0),
            Point::new(1.0, 1.0),
            Point::new(-1.0, 1.0),
        ]) {
            HullShape::Polygon(p) => p,
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn hull_shape_classification() {
        assert!(matches!(
            ConvexPolygon::hull_of(&[Point::new(1.0, 2.0); 3]),
            HullShape::Point(_)
        ));
        assert!(matches!(
            ConvexPolygon::hull_of(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]),
            HullShape::Segment(_, _)
        ));
        assert!(matches!(
            ConvexPolygon::hull_of(&[
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0)
            ]),
            HullShape::Polygon(_)
        ));
        assert!(matches!(
            ConvexPolygon::hull_of(&[]),
            HullShape::Point(Point { x: 0.0, y: 0.0 })
        ));
    }

    #[test]
    fn square_area_perimeter_centroid() {
        let sq = unit_square();
        assert!((sq.area() - 4.0).abs() < 1e-12);
        assert!((sq.perimeter() - 8.0).abs() < 1e-12);
        let c = sq.centroid();
        assert!(c.norm() < 1e-12);
    }

    #[test]
    fn containment() {
        let sq = unit_square();
        assert!(sq.contains(Point::ORIGIN));
        assert!(sq.contains(Point::new(1.0, 1.0))); // vertex
        assert!(sq.contains(Point::new(0.0, 1.0))); // edge
        assert!(!sq.contains(Point::new(1.5, 0.0)));
        assert!(!sq.contains(Point::new(0.0, -1.01)));
    }

    #[test]
    fn minkowski_norm_of_square() {
        let sq = unit_square();
        // Boundary points have norm 1.
        assert!((sq.minkowski_norm(Point::new(1.0, 0.0)) - 1.0).abs() < 1e-9);
        assert!((sq.minkowski_norm(Point::new(1.0, 1.0)) - 1.0).abs() < 1e-9);
        assert!((sq.minkowski_norm(Point::new(0.5, 0.25)) - 0.5).abs() < 1e-9);
        assert!((sq.minkowski_norm(Point::new(2.0, 0.0)) - 2.0).abs() < 1e-9);
        assert_eq!(sq.minkowski_norm(Point::ORIGIN), 0.0);
    }

    #[test]
    fn minkowski_norm_homogeneous_and_triangle_inequality() {
        let sq = unit_square();
        let a = Point::new(0.3, -0.7);
        let b = Point::new(-1.2, 0.4);
        let na = sq.minkowski_norm(a);
        assert!((sq.minkowski_norm(a * 3.0) - 3.0 * na).abs() < 1e-9);
        assert!(sq.minkowski_norm(a + b) <= na + sq.minkowski_norm(b) + 1e-9);
    }

    #[test]
    fn transform_scales_area_by_det() {
        let sq = unit_square();
        let m = Mat2::new(2.0, 1.0, 0.0, 3.0); // det 6
        let t = sq.transform(&m).unwrap();
        assert!((t.area() - 24.0).abs() < 1e-9);
        // Orientation-reversing map still yields CCW polygon.
        let flip = Mat2::diag(-1.0, 1.0);
        let f = sq.transform(&flip).unwrap();
        assert!((f.area() - 4.0).abs() < 1e-9);
        assert!(f.area() > 0.0);
        assert!(sq.transform(&Mat2::diag(0.0, 1.0)).is_none());
    }

    #[test]
    fn covariance_of_square() {
        // Uniform on [-1,1]^2 has covariance diag(1/3, 1/3).
        let cov = unit_square().covariance();
        assert!((cov.a - 1.0 / 3.0).abs() < 1e-9, "cov.a = {}", cov.a);
        assert!((cov.d - 1.0 / 3.0).abs() < 1e-9);
        assert!(cov.b.abs() < 1e-9 && cov.c.abs() < 1e-9);
    }

    #[test]
    fn covariance_translation_rule() {
        // Shift the square: covariance must not change.
        let sq = unit_square();
        let shifted = ConvexPolygon::from_ccw_vertices(
            sq.vertices()
                .iter()
                .map(|&v| v + Point::new(5.0, -2.0))
                .collect(),
        );
        let c0 = sq.covariance();
        let c1 = shifted.covariance();
        assert!((c0 - c1).frobenius() < 1e-9);
    }

    #[test]
    fn uniform_samples_inside_and_mean_near_centroid() {
        let sq = unit_square();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut mean = Point::ORIGIN;
        const N: usize = 20_000;
        for _ in 0..N {
            let p = sq.sample_uniform(&mut rng);
            assert!(sq.contains(p));
            mean += p / N as f64;
        }
        assert!(mean.norm() < 0.03, "sample mean {mean:?} too far from 0");
    }

    #[test]
    fn bounding_radius() {
        assert!((unit_square().bounding_radius() - 2.0_f64.sqrt()).abs() < 1e-12);
    }
}
