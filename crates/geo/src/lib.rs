//! # panda-geo
//!
//! 2-D geometry substrate for the PANDA / PGLP reproduction.
//!
//! This crate provides every spatial primitive the rest of the workspace
//! builds on:
//!
//! * [`Point`] and [`Mat2`] — plane points and 2×2 linear algebra, including
//!   the symmetric eigendecomposition used by the Planar Isotropic Mechanism's
//!   isotropic transform.
//! * [`GridMap`] and [`CellId`] — the discrete location domain of the paper
//!   (Fig. 2 / Fig. 4 grid worlds), with cell ↔ coordinate conversions,
//!   4/8-neighbourhoods and block coarsening (the basis for the `Ga`/`Gb`
//!   partition policies).
//! * [`hull`] — monotone-chain convex hulls and the pairwise difference sets
//!   that define sensitivity hulls.
//! * [`ConvexPolygon`] — area / centroid / containment / support function and
//!   uniform sampling, everything K-norm noise sampling needs.
//! * [`sample`] — uniform sampling in triangles, convex polygons and disks.
//!
//! All floating-point geometry is `f64`; all randomness flows through caller
//! supplied [`rand::Rng`] values so experiments are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distance;
pub mod grid;
pub mod hull;
pub mod mat2;
pub mod point;
pub mod polygon;
pub mod sample;

pub use distance::{chebyshev, euclidean, euclidean_sq, haversine_km, manhattan};
pub use grid::{CellId, GridMap};
pub use hull::{convex_hull, difference_set};
pub use mat2::Mat2;
pub use point::Point;
pub use polygon::ConvexPolygon;
