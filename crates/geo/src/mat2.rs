//! 2×2 matrices: the linear algebra behind the Planar Isotropic Mechanism.
//!
//! The PIM (Xiao & Xiong, CCS'15) transforms the sensitivity hull into
//! *isotropic position* before sampling K-norm noise. In two dimensions this
//! needs exactly: matrix multiplication / inversion, and the symmetric
//! eigendecomposition used to build `Σ^{-1/2}` from a covariance matrix Σ.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Sub};

/// A 2×2 matrix in row-major order:
///
/// ```text
/// | a  b |
/// | c  d |
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat2 {
    /// Row 1, column 1.
    pub a: f64,
    /// Row 1, column 2.
    pub b: f64,
    /// Row 2, column 1.
    pub c: f64,
    /// Row 2, column 2.
    pub d: f64,
}

impl Mat2 {
    /// The identity matrix.
    pub const IDENTITY: Mat2 = Mat2 {
        a: 1.0,
        b: 0.0,
        c: 0.0,
        d: 1.0,
    };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        Mat2 { a, b, c, d }
    }

    /// A diagonal matrix `diag(a, d)`.
    #[inline]
    pub const fn diag(a: f64, d: f64) -> Self {
        Mat2::new(a, 0.0, 0.0, d)
    }

    /// A uniform scaling matrix `s·I`.
    #[inline]
    pub const fn scale(s: f64) -> Self {
        Mat2::diag(s, s)
    }

    /// Rotation by `angle` radians counter-clockwise.
    pub fn rotation(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat2::new(c, -s, s, c)
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Trace.
    #[inline]
    pub fn trace(&self) -> f64 {
        self.a + self.d
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Mat2 {
        Mat2::new(self.a, self.c, self.b, self.d)
    }

    /// Matrix inverse, or `None` when the determinant is (near) zero.
    pub fn inverse(&self) -> Option<Mat2> {
        let det = self.det();
        if det.abs() < 1e-300 {
            return None;
        }
        Some(Mat2::new(
            self.d / det,
            -self.b / det,
            -self.c / det,
            self.a / det,
        ))
    }

    /// Applies the matrix to a point/vector.
    #[inline]
    pub fn apply(&self, p: Point) -> Point {
        Point::new(self.a * p.x + self.b * p.y, self.c * p.x + self.d * p.y)
    }

    /// `true` when the matrix is symmetric up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        (self.b - self.c).abs() <= tol
    }

    /// Eigendecomposition of a **symmetric** matrix.
    ///
    /// Returns `(λ1, λ2, v1, v2)` with `λ1 ≥ λ2` and `v1 ⟂ v2` unit
    /// eigenvectors. The closed form for 2×2 symmetric matrices is exact up
    /// to floating point; no iteration is involved.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the matrix is symmetric.
    pub fn symmetric_eigen(&self) -> (f64, f64, Point, Point) {
        debug_assert!(self.is_symmetric(1e-9 * (1.0 + self.trace().abs())));
        let half_tr = 0.5 * self.trace();
        // Discriminant of the characteristic polynomial; clamp tiny negative
        // values caused by rounding.
        let disc = (0.5 * (self.a - self.d)).powi(2) + self.b * self.c;
        let root = disc.max(0.0).sqrt();
        let l1 = half_tr + root;
        let l2 = half_tr - root;

        let v1 = if self.b.abs() > 1e-12 {
            Point::new(l1 - self.d, self.b)
        } else if self.c.abs() > 1e-12 {
            Point::new(self.c, l1 - self.a)
        } else if self.a >= self.d {
            Point::new(1.0, 0.0)
        } else {
            Point::new(0.0, 1.0)
        };
        let v1 = v1.normalized().unwrap_or(Point::new(1.0, 0.0));
        let v2 = Point::new(-v1.y, v1.x);
        (l1, l2, v1, v2)
    }

    /// Inverse square root `M^{-1/2}` of a symmetric **positive definite**
    /// matrix.
    ///
    /// Built from the eigendecomposition: `M^{-1/2} = V diag(λ^{-1/2}) Vᵀ`.
    /// Returns `None` when an eigenvalue is not strictly positive (the
    /// matrix is singular or indefinite), which for PIM means the sensitivity
    /// hull is degenerate and the caller must fall back to a 1-D treatment.
    pub fn inv_sqrt(&self) -> Option<Mat2> {
        let (l1, l2, v1, v2) = self.symmetric_eigen();
        if l1 <= 0.0 || l2 <= 0.0 {
            return None;
        }
        let s1 = 1.0 / l1.sqrt();
        let s2 = 1.0 / l2.sqrt();
        // V diag(s) V^T, with V = [v1 v2] as columns.
        Some(Mat2::new(
            s1 * v1.x * v1.x + s2 * v2.x * v2.x,
            s1 * v1.x * v1.y + s2 * v2.x * v2.y,
            s1 * v1.y * v1.x + s2 * v2.y * v2.x,
            s1 * v1.y * v1.y + s2 * v2.y * v2.y,
        ))
    }

    /// Square root `M^{1/2}` of a symmetric positive **semi-definite**
    /// matrix (eigenvalues clamped at zero).
    pub fn sqrt(&self) -> Mat2 {
        let (l1, l2, v1, v2) = self.symmetric_eigen();
        let s1 = l1.max(0.0).sqrt();
        let s2 = l2.max(0.0).sqrt();
        Mat2::new(
            s1 * v1.x * v1.x + s2 * v2.x * v2.x,
            s1 * v1.x * v1.y + s2 * v2.x * v2.y,
            s1 * v1.y * v1.x + s2 * v2.y * v2.x,
            s1 * v1.y * v1.y + s2 * v2.y * v2.y,
        )
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        (self.a * self.a + self.b * self.b + self.c * self.c + self.d * self.d).sqrt()
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, rhs: Mat2) -> Mat2 {
        Mat2::new(
            self.a * rhs.a + self.b * rhs.c,
            self.a * rhs.b + self.b * rhs.d,
            self.c * rhs.a + self.d * rhs.c,
            self.c * rhs.b + self.d * rhs.d,
        )
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    fn add(self, rhs: Mat2) -> Mat2 {
        Mat2::new(
            self.a + rhs.a,
            self.b + rhs.b,
            self.c + rhs.c,
            self.d + rhs.d,
        )
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    fn sub(self, rhs: Mat2) -> Mat2 {
        Mat2::new(
            self.a - rhs.a,
            self.b - rhs.b,
            self.c - rhs.c,
            self.d - rhs.d,
        )
    }
}

impl Mul<f64> for Mat2 {
    type Output = Mat2;
    fn mul(self, s: f64) -> Mat2 {
        Mat2::new(self.a * s, self.b * s, self.c * s, self.d * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn identity_is_neutral() {
        let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m * Mat2::IDENTITY, m);
        assert_eq!(Mat2::IDENTITY * m, m);
    }

    #[test]
    fn determinant_and_trace() {
        let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.det(), -2.0);
        assert_eq!(m.trace(), 5.0);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat2::new(2.0, 1.0, 1.0, 3.0);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        assert!(close(id.a, 1.0) && close(id.b, 0.0) && close(id.c, 0.0) && close(id.d, 1.0));
    }

    #[test]
    fn singular_has_no_inverse() {
        assert!(Mat2::new(1.0, 2.0, 2.0, 4.0).inverse().is_none());
    }

    #[test]
    fn apply_rotation() {
        let r = Mat2::rotation(std::f64::consts::FRAC_PI_2);
        let p = r.apply(Point::new(1.0, 0.0));
        assert!(close(p.x, 0.0) && close(p.y, 1.0));
    }

    #[test]
    fn symmetric_eigen_diagonal() {
        let (l1, l2, v1, v2) = Mat2::diag(3.0, 1.0).symmetric_eigen();
        assert!(close(l1, 3.0) && close(l2, 1.0));
        assert!(close(v1.dot(v2), 0.0));
        assert!(close(v1.norm(), 1.0) && close(v2.norm(), 1.0));
    }

    #[test]
    fn symmetric_eigen_reconstruction() {
        let m = Mat2::new(2.0, 0.7, 0.7, 1.2);
        let (l1, l2, v1, v2) = m.symmetric_eigen();
        // M v = λ v for both eigenpairs.
        let mv1 = m.apply(v1);
        let mv2 = m.apply(v2);
        assert!(close(mv1.x, l1 * v1.x) && close(mv1.y, l1 * v1.y));
        assert!(close(mv2.x, l2 * v2.x) && close(mv2.y, l2 * v2.y));
        assert!(l1 >= l2);
    }

    #[test]
    fn inv_sqrt_whitens() {
        // Σ^{-1/2} Σ Σ^{-1/2} = I
        let sigma = Mat2::new(4.0, 1.0, 1.0, 2.0);
        let w = sigma.inv_sqrt().unwrap();
        let id = w * sigma * w;
        assert!(close(id.a, 1.0) && close(id.b, 0.0) && close(id.c, 0.0) && close(id.d, 1.0));
    }

    #[test]
    fn inv_sqrt_rejects_indefinite() {
        assert!(Mat2::new(1.0, 0.0, 0.0, -1.0).inv_sqrt().is_none());
        assert!(Mat2::diag(0.0, 1.0).inv_sqrt().is_none());
    }

    #[test]
    fn sqrt_squares_back() {
        let m = Mat2::new(5.0, 2.0, 2.0, 3.0);
        let r = m.sqrt();
        let back = r * r;
        assert!(close(back.a, m.a) && close(back.b, m.b) && close(back.d, m.d));
    }

    #[test]
    fn frobenius_norm() {
        assert!(close(Mat2::new(1.0, 2.0, 2.0, 0.0).frobenius(), 3.0));
    }
}
