//! Distance functions over plane points.
//!
//! The paper's utility metric for location monitoring is the *Euclidean
//! distance between perturbed and real locations* (§3.2); Manhattan and
//! Chebyshev distances appear in grid-neighbourhood reasoning (a cell's
//! 8-neighbourhood is exactly the Chebyshev unit ball, Fig. 2's `G1`).
//! Haversine converts synthetic lat/lon traces to kilometre errors.

use crate::point::Point;

/// Euclidean distance `d_E` between two points — the paper's `dE(·,·)`.
#[inline]
pub fn euclidean(a: Point, b: Point) -> f64 {
    a.distance(b)
}

/// Squared Euclidean distance (no square root, for comparisons).
#[inline]
pub fn euclidean_sq(a: Point, b: Point) -> f64 {
    a.distance_sq(b)
}

/// Manhattan (L1) distance; the graph distance of the 4-neighbour grid graph
/// between cell centres, in units of cells.
#[inline]
pub fn manhattan(a: Point, b: Point) -> f64 {
    (a.x - b.x).abs() + (a.y - b.y).abs()
}

/// Chebyshev (L∞) distance; the graph distance of the 8-neighbour grid graph
/// (`G1` in Fig. 2) between cell centres, in units of cells.
#[inline]
pub fn chebyshev(a: Point, b: Point) -> f64 {
    (a.x - b.x).abs().max((a.y - b.y).abs())
}

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance in kilometres between `(lat, lon)` pairs given in
/// degrees, via the haversine formula.
///
/// Used to express utility error in physical units when a [`crate::GridMap`]
/// is anchored at real-world coordinates (the GeoLife-like generator anchors
/// its grid in Beijing for verisimilitude).
pub fn haversine_km(a_lat_lon: (f64, f64), b_lat_lon: (f64, f64)) -> f64 {
    let (lat1, lon1) = (a_lat_lon.0.to_radians(), a_lat_lon.1.to_radians());
    let (lat2, lon2) = (b_lat_lon.0.to_radians(), b_lat_lon.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_345() {
        assert_eq!(euclidean(Point::new(0.0, 0.0), Point::new(3.0, 4.0)), 5.0);
        assert_eq!(
            euclidean_sq(Point::new(0.0, 0.0), Point::new(3.0, 4.0)),
            25.0
        );
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(manhattan(a, b), 7.0);
        assert_eq!(chebyshev(a, b), 4.0);
    }

    #[test]
    fn metric_inequalities() {
        // chebyshev <= euclidean <= manhattan for any pair.
        let pairs = [
            (Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            (Point::new(-2.0, 5.0), Point::new(3.0, 3.0)),
            (Point::new(0.1, 0.2), Point::new(0.4, -0.9)),
        ];
        for (a, b) in pairs {
            assert!(chebyshev(a, b) <= euclidean(a, b) + 1e-12);
            assert!(euclidean(a, b) <= manhattan(a, b) + 1e-12);
        }
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert!(haversine_km((39.9, 116.4), (39.9, 116.4)) < 1e-9);
    }

    #[test]
    fn haversine_known_distance() {
        // Beijing (39.9042, 116.4074) to Shanghai (31.2304, 121.4737) is
        // roughly 1068 km great-circle.
        let d = haversine_km((39.9042, 116.4074), (31.2304, 121.4737));
        assert!((d - 1068.0).abs() < 10.0, "got {d}");
    }

    #[test]
    fn haversine_symmetry() {
        let a = (35.0, 135.0);
        let b = (34.0, 131.0);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }
}
