//! Uniform geometric sampling primitives.
//!
//! These are the building blocks of the noise mechanisms: planar Laplace
//! needs a uniform direction, K-norm needs uniform points in a convex body,
//! and the mobility generators need uniform points in disks and rectangles.

use crate::point::Point;
use rand::Rng;

/// Samples a point uniformly from the triangle `(a, b, c)`.
///
/// Uses the standard square-root reflection trick: with `u, v ~ U(0,1)`,
/// fold the unit square onto the simplex and map affinely.
pub fn uniform_in_triangle<R: Rng + ?Sized>(rng: &mut R, a: Point, b: Point, c: Point) -> Point {
    let mut u: f64 = rng.gen();
    let mut v: f64 = rng.gen();
    if u + v > 1.0 {
        u = 1.0 - u;
        v = 1.0 - v;
    }
    a + (b - a) * u + (c - a) * v
}

/// Samples a unit vector with uniformly distributed direction.
pub fn uniform_direction<R: Rng + ?Sized>(rng: &mut R) -> Point {
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    Point::new(theta.cos(), theta.sin())
}

/// Samples a point uniformly from the disk of radius `r` centred at `center`.
pub fn uniform_in_disk<R: Rng + ?Sized>(rng: &mut R, center: Point, r: f64) -> Point {
    let radius = r * rng.gen::<f64>().sqrt();
    center + uniform_direction(rng) * radius
}

/// Samples a point uniformly from the axis-aligned rectangle
/// `[min.x, max.x] × [min.y, max.y]`.
pub fn uniform_in_rect<R: Rng + ?Sized>(rng: &mut R, min: Point, max: Point) -> Point {
    Point::new(rng.gen_range(min.x..=max.x), rng.gen_range(min.y..=max.y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_samples_stay_inside() {
        let (a, b, c) = (
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        );
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..5000 {
            let p = uniform_in_triangle(&mut rng, a, b, c);
            assert!(p.x >= -1e-12 && p.y >= -1e-12 && p.x + p.y <= 2.0 + 1e-12);
        }
    }

    #[test]
    fn triangle_mean_is_centroid() {
        let (a, b, c) = (
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        );
        let mut rng = SmallRng::seed_from_u64(2);
        let mut mean = Point::ORIGIN;
        const N: usize = 30_000;
        for _ in 0..N {
            mean += uniform_in_triangle(&mut rng, a, b, c) / N as f64;
        }
        let centroid = Point::new(1.0, 1.0);
        assert!(mean.distance(centroid) < 0.03, "mean {mean:?}");
    }

    #[test]
    fn directions_are_unit_and_cover_quadrants() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut quadrants = [0usize; 4];
        for _ in 0..4000 {
            let d = uniform_direction(&mut rng);
            assert!((d.norm() - 1.0).abs() < 1e-12);
            let q = match (d.x >= 0.0, d.y >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            quadrants[q] += 1;
        }
        for &count in &quadrants {
            assert!(count > 800, "quadrant counts skewed: {quadrants:?}");
        }
    }

    #[test]
    fn disk_samples_inside_radius() {
        let mut rng = SmallRng::seed_from_u64(4);
        let center = Point::new(5.0, -3.0);
        for _ in 0..5000 {
            let p = uniform_in_disk(&mut rng, center, 2.0);
            assert!(p.distance(center) <= 2.0 + 1e-12);
        }
    }

    #[test]
    fn disk_is_area_uniform() {
        // Half the samples should fall within r/sqrt(2) of the centre.
        let mut rng = SmallRng::seed_from_u64(5);
        let inner = (0..20_000)
            .filter(|_| {
                uniform_in_disk(&mut rng, Point::ORIGIN, 1.0).norm()
                    <= std::f64::consts::FRAC_1_SQRT_2
            })
            .count();
        let frac = inner as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02, "inner fraction {frac}");
    }

    #[test]
    fn rect_samples_inside() {
        let mut rng = SmallRng::seed_from_u64(6);
        let (min, max) = (Point::new(-1.0, 2.0), Point::new(1.0, 4.0));
        for _ in 0..2000 {
            let p = uniform_in_rect(&mut rng, min, max);
            assert!(p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y);
        }
    }
}
