//! Convex hulls and difference sets.
//!
//! The Planar Isotropic Mechanism's *sensitivity hull* is
//! `K = conv{ s_i − s_j : s_i, s_j ∈ ΔX }` — the convex hull of the pairwise
//! difference set of the protected locations (Xiao & Xiong, CCS'15, Def. 4.3).
//! This module provides the hull construction (Andrew's monotone chain,
//! O(n log n)) and the difference-set expansion.

use crate::point::Point;

/// Computes the convex hull of a point set with Andrew's monotone chain.
///
/// Returns the hull vertices in counter-clockwise order, starting from the
/// lexicographically smallest point, with collinear interior points removed.
/// Degenerate inputs are handled: the hull of fewer than three distinct
/// points is the deduplicated point list itself (possibly a segment or a
/// single point).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.iter().copied().filter(|p| p.is_finite()).collect();
    pts.sort_by(|a, b| a.lex_cmp(b));
    pts.dedup_by(|a, b| a == b);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if (q - r).cross(p - r) <= 1e-12 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if (q - r).cross(p - r) <= 1e-12 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    if hull.len() < 3 {
        // All points were collinear: return the two extreme points.
        return vec![pts[0], pts[n - 1]];
    }
    hull
}

/// The pairwise difference set `{ a − b : a, b ∈ points, a ≠ b }`, plus the
/// origin (every sensitivity hull contains `s − s = 0`).
///
/// The result has `n(n−1) + 1` points for `n` inputs; callers immediately
/// reduce it with [`convex_hull`]. The difference set is symmetric about the
/// origin by construction, so the resulting hull is origin-symmetric — a
/// property the K-norm sampler relies on.
pub fn difference_set(points: &[Point]) -> Vec<Point> {
    let n = points.len();
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) + 1);
    out.push(Point::ORIGIN);
    for (i, &a) in points.iter().enumerate() {
        for (j, &b) in points.iter().enumerate() {
            if i != j {
                out.push(a - b);
            }
        }
    }
    out
}

/// Convenience: the sensitivity hull of a location set, i.e.
/// `convex_hull(difference_set(points))`.
pub fn sensitivity_hull(points: &[Point]) -> Vec<Point> {
    convex_hull(&difference_set(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_point() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&Point::new(0.5, 0.5)));
    }

    #[test]
    fn hull_starts_at_lex_min_and_is_ccw() {
        let pts = [
            Point::new(2.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull[0], Point::new(0.0, 0.0));
        // CCW: every consecutive triple turns left.
        for i in 0..hull.len() {
            let a = hull[i];
            let b = hull[(i + 1) % hull.len()];
            let c = hull[(i + 2) % hull.len()];
            assert!((b - a).cross(c - a) > 0.0);
        }
    }

    #[test]
    fn hull_removes_collinear_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn degenerate_hulls() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        let seg = convex_hull(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        assert_eq!(seg.len(), 2);
        // Collinear points give the two extremes.
        let col = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        assert_eq!(col, vec![Point::new(0.0, 0.0), Point::new(2.0, 2.0)]);
    }

    #[test]
    fn hull_with_duplicates() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        assert_eq!(convex_hull(&pts).len(), 3);
    }

    #[test]
    fn difference_set_size_and_symmetry() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let ds = difference_set(&pts);
        assert_eq!(ds.len(), 3 * 2 + 1);
        assert!(ds.contains(&Point::ORIGIN));
        for &d in &ds {
            assert!(
                ds.iter().any(|&e| (e + d).norm() < 1e-12),
                "difference set must be symmetric about the origin"
            );
        }
    }

    #[test]
    fn sensitivity_hull_of_unit_segment() {
        // Two locations distance 1 apart: hull is the segment [-1, 1] on x.
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let hull = sensitivity_hull(&pts);
        assert_eq!(hull.len(), 2);
        assert!(hull.contains(&Point::new(-1.0, 0.0)));
        assert!(hull.contains(&Point::new(1.0, 0.0)));
    }

    #[test]
    fn sensitivity_hull_is_origin_symmetric() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 4.0),
            Point::new(-2.0, 2.0),
        ];
        let hull = sensitivity_hull(&pts);
        for &v in &hull {
            assert!(
                hull.iter().any(|&w| (w + v).norm() < 1e-9),
                "vertex {v:?} lacks an antipode"
            );
        }
    }
}
