//! The discrete location domain: a rectangular grid of cells.
//!
//! PGLP (Def. 2.1) protects a finite set of *possible locations*. Following
//! the paper's figures, locations are the cells of a rectangular grid; the
//! policy graphs `G1`, `Ga`, `Gb`, `Gc` of Figs. 2 and 4 are all defined over
//! this domain. [`GridMap`] owns the cell ↔ coordinate mapping, neighbourhood
//! structure and the block coarsening used by the partition policies.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Identifier of one grid cell, `row * width + col`.
///
/// `CellId` is the universal location type of the workspace: trajectories,
/// policy graphs, mechanisms and the surveillance protocol all speak
/// `CellId`. It is deliberately a thin `u32` (cheap keys, dense indexing).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[repr(transparent)] // guarantees &[u32] ↔ &[CellId] reinterpretation is sound
pub struct CellId(pub u32);

impl CellId {
    /// The cell id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for CellId {
    fn from(v: u32) -> Self {
        CellId(v)
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A rectangular grid map: `width × height` square cells of side
/// `cell_size` (abstract length units; the experiments use metres).
///
/// The cell at column `c`, row `r` covers
/// `[origin.x + c·size, origin.x + (c+1)·size) × [origin.y + r·size, …)`,
/// and its representative point is the cell centre.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridMap {
    width: u32,
    height: u32,
    cell_size: f64,
    origin: Point,
    /// Optional `(lat, lon)` of the origin corner, for reporting distances in
    /// real-world kilometres (see [`GridMap::lat_lon`]).
    anchor: Option<(f64, f64)>,
}

impl GridMap {
    /// Creates a grid with the given dimensions and cell side length, with
    /// the origin corner at `(0, 0)`.
    ///
    /// # Panics
    ///
    /// Panics if `width`/`height` are zero, if the cell count would overflow
    /// `u32`, or if `cell_size` is not strictly positive.
    pub fn new(width: u32, height: u32, cell_size: f64) -> Self {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        assert!(
            (width as u64) * (height as u64) <= u32::MAX as u64,
            "grid too large for u32 cell ids"
        );
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive"
        );
        GridMap {
            width,
            height,
            cell_size,
            origin: Point::ORIGIN,
            anchor: None,
        }
    }

    /// Sets the plane coordinates of the origin corner.
    pub fn with_origin(mut self, origin: Point) -> Self {
        self.origin = origin;
        self
    }

    /// Anchors the origin corner at real-world `(lat, lon)` degrees, enabling
    /// [`GridMap::lat_lon`].
    pub fn with_anchor(mut self, lat: f64, lon: f64) -> Self {
        self.anchor = Some((lat, lon));
        self
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Plane coordinates of the origin corner.
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Real-world `(lat, lon)` of the origin corner, if anchored.
    #[inline]
    pub fn anchor(&self) -> Option<(f64, f64)> {
        self.anchor
    }

    /// Total number of cells (the size of the location domain `S`).
    #[inline]
    pub fn n_cells(&self) -> u32 {
        self.width * self.height
    }

    /// The cell at column `col`, row `row`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn cell(&self, col: u32, row: u32) -> CellId {
        assert!(col < self.width && row < self.height, "cell out of bounds");
        CellId(row * self.width + col)
    }

    /// Column of a cell.
    #[inline]
    pub fn col(&self, cell: CellId) -> u32 {
        cell.0 % self.width
    }

    /// Row of a cell.
    #[inline]
    pub fn row(&self, cell: CellId) -> u32 {
        cell.0 / self.width
    }

    /// `true` when `cell` belongs to this grid.
    #[inline]
    pub fn contains(&self, cell: CellId) -> bool {
        cell.0 < self.n_cells()
    }

    /// Centre point of a cell.
    #[inline]
    pub fn center(&self, cell: CellId) -> Point {
        debug_assert!(self.contains(cell));
        Point::new(
            self.origin.x + (self.col(cell) as f64 + 0.5) * self.cell_size,
            self.origin.y + (self.row(cell) as f64 + 0.5) * self.cell_size,
        )
    }

    /// The cell containing `p`, or `None` when `p` lies outside the grid.
    pub fn cell_at(&self, p: Point) -> Option<CellId> {
        let fx = (p.x - self.origin.x) / self.cell_size;
        let fy = (p.y - self.origin.y) / self.cell_size;
        if fx < 0.0 || fy < 0.0 {
            return None;
        }
        let (col, row) = (fx as u32, fy as u32);
        if col >= self.width || row >= self.height {
            None
        } else {
            Some(self.cell(col, row))
        }
    }

    /// The cell nearest to `p`, clamping coordinates outside the grid onto
    /// the boundary. Used to snap continuous mechanism outputs (planar
    /// Laplace samples) back onto the location domain.
    pub fn nearest_cell(&self, p: Point) -> CellId {
        let fx = ((p.x - self.origin.x) / self.cell_size).floor();
        let fy = ((p.y - self.origin.y) / self.cell_size).floor();
        let col = (fx.max(0.0) as u32).min(self.width - 1);
        let row = (fy.max(0.0) as u32).min(self.height - 1);
        self.cell(col, row)
    }

    /// Euclidean distance between two cell centres.
    #[inline]
    pub fn distance(&self, a: CellId, b: CellId) -> f64 {
        self.center(a).distance(self.center(b))
    }

    /// Chebyshev distance between two cells in **cell units** — the graph
    /// distance of the 8-neighbour policy graph `G1`.
    pub fn chebyshev_cells(&self, a: CellId, b: CellId) -> u32 {
        let dc = self.col(a).abs_diff(self.col(b));
        let dr = self.row(a).abs_diff(self.row(b));
        dc.max(dr)
    }

    /// Manhattan distance between two cells in cell units — the graph
    /// distance of the 4-neighbour grid graph.
    pub fn manhattan_cells(&self, a: CellId, b: CellId) -> u32 {
        self.col(a).abs_diff(self.col(b)) + self.row(a).abs_diff(self.row(b))
    }

    /// Iterator over every cell, row-major.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.n_cells()).map(CellId)
    }

    /// The 4-neighbourhood (N, S, E, W) of a cell, respecting boundaries.
    pub fn neighbors4(&self, cell: CellId) -> Vec<CellId> {
        let (c, r) = (self.col(cell) as i64, self.row(cell) as i64);
        let mut out = Vec::with_capacity(4);
        for (dc, dr) in [(0i64, 1i64), (0, -1), (1, 0), (-1, 0)] {
            self.push_if_valid(c + dc, r + dr, &mut out);
        }
        out
    }

    /// The 8-neighbourhood of a cell — the paper's "closest eight locations
    /// on the map" that define `G1` (Fig. 2, left).
    pub fn neighbors8(&self, cell: CellId) -> Vec<CellId> {
        let (c, r) = (self.col(cell) as i64, self.row(cell) as i64);
        let mut out = Vec::with_capacity(8);
        for dc in -1i64..=1 {
            for dr in -1i64..=1 {
                if dc == 0 && dr == 0 {
                    continue;
                }
                self.push_if_valid(c + dc, r + dr, &mut out);
            }
        }
        out
    }

    fn push_if_valid(&self, c: i64, r: i64, out: &mut Vec<CellId>) {
        if c >= 0 && r >= 0 && (c as u32) < self.width && (r as u32) < self.height {
            out.push(self.cell(c as u32, r as u32));
        }
    }

    /// All cells whose Chebyshev distance from `cell` is at most `k` — the
    /// k-hop ball of the `G1` policy graph, used for δ-location sets.
    pub fn chebyshev_ball(&self, cell: CellId, k: u32) -> Vec<CellId> {
        let (c, r) = (self.col(cell), self.row(cell));
        let c0 = c.saturating_sub(k);
        let c1 = (c + k).min(self.width - 1);
        let r0 = r.saturating_sub(k);
        let r1 = (r + k).min(self.height - 1);
        let mut out = Vec::with_capacity(((c1 - c0 + 1) * (r1 - r0 + 1)) as usize);
        for row in r0..=r1 {
            for col in c0..=c1 {
                out.push(self.cell(col, row));
            }
        }
        out
    }

    /// Partitions the grid into rectangular blocks of `block_w × block_h`
    /// cells and returns the block index of `cell` (row-major over blocks).
    ///
    /// This is the coarsening behind the `Ga`/`Gb` policies of Fig. 4:
    /// "indistinguishability inside each coarse-grained area, distinguishable
    /// across areas". Blocks at the right/bottom edge may be smaller.
    pub fn block_of(&self, cell: CellId, block_w: u32, block_h: u32) -> u32 {
        assert!(block_w > 0 && block_h > 0, "block dims must be positive");
        let bc = self.col(cell) / block_w;
        let br = self.row(cell) / block_h;
        br * self.blocks_per_row(block_w) + bc
    }

    /// Number of blocks per row for a given block width.
    pub fn blocks_per_row(&self, block_w: u32) -> u32 {
        self.width.div_ceil(block_w)
    }

    /// Number of block rows for a given block height.
    pub fn blocks_per_col(&self, block_h: u32) -> u32 {
        self.height.div_ceil(block_h)
    }

    /// Total number of blocks in the `block_w × block_h` coarsening.
    pub fn n_blocks(&self, block_w: u32, block_h: u32) -> u32 {
        self.blocks_per_row(block_w) * self.blocks_per_col(block_h)
    }

    /// All cells belonging to block `block` of the coarsening.
    pub fn block_cells(&self, block: u32, block_w: u32, block_h: u32) -> Vec<CellId> {
        let per_row = self.blocks_per_row(block_w);
        let (bc, br) = (block % per_row, block / per_row);
        let c0 = bc * block_w;
        let r0 = br * block_h;
        let c1 = (c0 + block_w).min(self.width);
        let r1 = (r0 + block_h).min(self.height);
        let mut out = Vec::with_capacity(((c1 - c0) * (r1 - r0)) as usize);
        for row in r0..r1 {
            for col in c0..c1 {
                out.push(self.cell(col, row));
            }
        }
        out
    }

    /// Real-world `(lat, lon)` of a cell centre, if the grid is anchored.
    ///
    /// Uses the local equirectangular approximation at the anchor latitude —
    /// adequate for city-scale grids (tens of kilometres), which is the scale
    /// of the paper's GeoLife/Gowalla scenarios.
    pub fn lat_lon(&self, cell: CellId) -> Option<(f64, f64)> {
        let (lat0, lon0) = self.anchor?;
        let center = self.center(cell);
        // Metres per degree at the anchor latitude.
        let m_per_deg_lat = 111_132.0;
        let m_per_deg_lon = 111_320.0 * lat0.to_radians().cos();
        Some((
            lat0 + (center.y - self.origin.y) / m_per_deg_lat,
            lon0 + (center.x - self.origin.x) / m_per_deg_lon,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridMap {
        GridMap::new(4, 3, 100.0)
    }

    #[test]
    fn dimensions_and_ids() {
        let g = grid();
        assert_eq!(g.n_cells(), 12);
        let c = g.cell(3, 2);
        assert_eq!(c, CellId(11));
        assert_eq!(g.col(c), 3);
        assert_eq!(g.row(c), 2);
        assert!(g.contains(c));
        assert!(!g.contains(CellId(12)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cell_out_of_bounds_panics() {
        grid().cell(4, 0);
    }

    #[test]
    fn centers_and_lookup_roundtrip() {
        let g = grid();
        for cell in g.cells() {
            let p = g.center(cell);
            assert_eq!(g.cell_at(p), Some(cell));
            assert_eq!(g.nearest_cell(p), cell);
        }
    }

    #[test]
    fn cell_at_outside_is_none() {
        let g = grid();
        assert_eq!(g.cell_at(Point::new(-1.0, 50.0)), None);
        assert_eq!(g.cell_at(Point::new(401.0, 50.0)), None);
        assert_eq!(g.cell_at(Point::new(50.0, 301.0)), None);
    }

    #[test]
    fn nearest_cell_clamps() {
        let g = grid();
        assert_eq!(g.nearest_cell(Point::new(-50.0, -50.0)), g.cell(0, 0));
        assert_eq!(g.nearest_cell(Point::new(1e6, 1e6)), g.cell(3, 2));
    }

    #[test]
    fn neighbors_counts() {
        let g = grid();
        // Corner, edge, interior.
        assert_eq!(g.neighbors4(g.cell(0, 0)).len(), 2);
        assert_eq!(g.neighbors8(g.cell(0, 0)).len(), 3);
        assert_eq!(g.neighbors4(g.cell(1, 0)).len(), 3);
        assert_eq!(g.neighbors8(g.cell(1, 0)).len(), 5);
        assert_eq!(g.neighbors4(g.cell(1, 1)).len(), 4);
        assert_eq!(g.neighbors8(g.cell(1, 1)).len(), 8);
    }

    #[test]
    fn neighbors_are_distinct_and_adjacent() {
        let g = grid();
        for cell in g.cells() {
            let n8 = g.neighbors8(cell);
            let mut sorted = n8.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n8.len(), "duplicate neighbours");
            for n in n8 {
                assert_eq!(g.chebyshev_cells(cell, n), 1);
            }
        }
    }

    #[test]
    fn chebyshev_and_manhattan_cells() {
        let g = grid();
        let a = g.cell(0, 0);
        let b = g.cell(3, 2);
        assert_eq!(g.chebyshev_cells(a, b), 3);
        assert_eq!(g.manhattan_cells(a, b), 5);
        assert_eq!(g.chebyshev_cells(a, a), 0);
    }

    #[test]
    fn chebyshev_ball_is_clipped_box() {
        let g = grid();
        let ball = g.chebyshev_ball(g.cell(0, 0), 1);
        assert_eq!(ball.len(), 4); // 2x2 corner box
        let ball = g.chebyshev_ball(g.cell(1, 1), 1);
        assert_eq!(ball.len(), 9);
        for c in ball {
            assert!(g.chebyshev_cells(g.cell(1, 1), c) <= 1);
        }
    }

    #[test]
    fn blocks_partition_the_grid() {
        let g = GridMap::new(8, 8, 10.0);
        let (bw, bh) = (4, 4);
        assert_eq!(g.n_blocks(bw, bh), 4);
        let mut seen = vec![false; g.n_cells() as usize];
        for b in 0..g.n_blocks(bw, bh) {
            for cell in g.block_cells(b, bw, bh) {
                assert_eq!(g.block_of(cell, bw, bh), b);
                assert!(!seen[cell.index()], "cell in two blocks");
                seen[cell.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "blocks must cover the grid");
    }

    #[test]
    fn ragged_blocks_at_edges() {
        let g = GridMap::new(5, 5, 10.0);
        assert_eq!(g.n_blocks(2, 2), 9);
        // Bottom-right block is a single cell.
        let last = g.n_blocks(2, 2) - 1;
        assert_eq!(g.block_cells(last, 2, 2), vec![g.cell(4, 4)]);
    }

    #[test]
    fn anchored_lat_lon() {
        let g = GridMap::new(10, 10, 1000.0).with_anchor(39.9, 116.3);
        let (lat, lon) = g.lat_lon(g.cell(0, 0)).unwrap();
        assert!(lat > 39.9 && lat < 39.91);
        assert!(lon > 116.3 && lon < 116.32);
        assert!(GridMap::new(2, 2, 1.0).lat_lon(CellId(0)).is_none());
    }

    #[test]
    fn distance_between_centers() {
        let g = grid();
        assert_eq!(g.distance(g.cell(0, 0), g.cell(3, 0)), 300.0);
        assert_eq!(g.distance(g.cell(0, 0), g.cell(0, 2)), 200.0);
    }
}
