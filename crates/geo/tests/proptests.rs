//! Property-based tests for the geometry substrate.

use panda_geo::{convex_hull, difference_set, ConvexPolygon, GridMap, Mat2, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(arb_point(), min..max)
}

proptest! {
    /// Every input point lies inside (or on) the hull of the set.
    #[test]
    fn hull_contains_all_inputs(pts in arb_points(3, 40)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            let poly = ConvexPolygon::from_ccw_vertices(hull);
            for p in pts {
                prop_assert!(poly.contains(p));
            }
        }
    }

    /// The hull of a hull is the hull (idempotence).
    #[test]
    fn hull_is_idempotent(pts in arb_points(3, 40)) {
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        prop_assert_eq!(h1.len(), h2.len());
    }

    /// The hull of the difference set is symmetric about the origin.
    #[test]
    fn sensitivity_hull_symmetry(pts in arb_points(2, 15)) {
        let hull = convex_hull(&difference_set(&pts));
        for &v in &hull {
            prop_assert!(
                hull.iter().any(|&w| (w + v).norm() < 1e-6 * (1.0 + v.norm())),
                "missing antipode of {:?}", v
            );
        }
    }

    /// Minkowski norm is absolutely homogeneous: ‖t·p‖ = t·‖p‖ for t ≥ 0.
    #[test]
    fn minkowski_homogeneity(pts in arb_points(4, 20), p in arb_point(), t in 0.0f64..10.0) {
        if let panda_geo::polygon::HullShape::Polygon(poly) =
            ConvexPolygon::hull_of(&difference_set(&pts))
        {
            if poly.contains(Point::ORIGIN) && poly.area() > 1e-6 {
                let n1 = poly.minkowski_norm(p);
                let n2 = poly.minkowski_norm(p * t);
                if n1.is_finite() && n2.is_finite() {
                    prop_assert!((n2 - t * n1).abs() < 1e-6 * (1.0 + n2.abs()));
                }
            }
        }
    }

    /// Points sampled uniformly from a hull polygon stay inside it.
    #[test]
    fn polygon_sampling_containment(pts in arb_points(4, 20), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        if let panda_geo::polygon::HullShape::Polygon(poly) = ConvexPolygon::hull_of(&pts) {
            if poly.area() > 1e-6 {
                for _ in 0..32 {
                    prop_assert!(poly.contains(poly.sample_uniform(&mut rng)));
                }
            }
        }
    }

    /// Whitening really whitens: cov of transformed polygon ≈ identity.
    #[test]
    fn isotropic_transform_identity_covariance(pts in arb_points(5, 20)) {
        if let panda_geo::polygon::HullShape::Polygon(poly) = ConvexPolygon::hull_of(&pts) {
            let cov = poly.covariance();
            if poly.area() > 1e-3 && cov.det() > 1e-6 {
                if let Some(w) = cov.inv_sqrt() {
                    if let Some(t) = poly.transform(&w) {
                        let c2 = t.covariance();
                        prop_assert!((c2 - Mat2::IDENTITY).frobenius() < 1e-6,
                            "whitened covariance {:?}", c2);
                    }
                }
            }
        }
    }

    /// Grid cell <-> centre round trip for arbitrary grid geometry.
    #[test]
    fn grid_roundtrip(w in 1u32..60, h in 1u32..60, size in 0.1f64..1000.0) {
        let g = GridMap::new(w, h, size);
        for cell in g.cells().step_by(7) {
            prop_assert_eq!(g.cell_at(g.center(cell)), Some(cell));
        }
    }

    /// Chebyshev cell distance is a metric (triangle inequality).
    #[test]
    fn chebyshev_cells_triangle(w in 2u32..20, h in 2u32..20, s in 0u32..400, t in 0u32..400, u in 0u32..400) {
        let g = GridMap::new(w, h, 1.0);
        let n = g.n_cells();
        let (a, b, c) = (
            panda_geo::CellId(s % n),
            panda_geo::CellId(t % n),
            panda_geo::CellId(u % n),
        );
        prop_assert!(g.chebyshev_cells(a, c) <= g.chebyshev_cells(a, b) + g.chebyshev_cells(b, c));
        prop_assert_eq!(g.chebyshev_cells(a, b), g.chebyshev_cells(b, a));
        prop_assert_eq!(g.chebyshev_cells(a, a), 0);
    }
}
