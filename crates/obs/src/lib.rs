//! # panda-obs — workspace telemetry
//!
//! A dependency-free metrics layer for the PANDA ingest tier: lock-free
//! [`Counter`] / [`Gauge`] handles, fixed-bucket log₂-scaled [`Histogram`]s
//! (striped atomics merged at snapshot time; p50/p90/p99 derivable from the
//! buckets), and a [`Registry`] whose [`Snapshot`] renders a deterministic
//! (BTreeMap-ordered) Prometheus-style text exposition.
//!
//! ## Hot-path cost
//!
//! Recording is one or two relaxed atomic RMWs — no locks, no allocation.
//! The registry lock is touched only at registration and snapshot time
//! (both cold). Building with `RUSTFLAGS="--cfg panda_obs_off"` compiles
//! every recording operation down to a no-op, which is how the
//! `bench_release --telemetry` section measures instrumentation overhead.
//!
//! ## Determinism contract
//!
//! Telemetry must never feed the byte-identity contract: the released
//! database is a pure function of `(seed, arrival order)`, so nothing an
//! instrument records may key an RNG stream. Two rules keep that true:
//!
//! 1. every wall-clock read in the workspace goes through [`clock`] — the
//!    single sanctioned `Instant::now` site, enforced by `panda-check`'s
//!    `banned_api` rule;
//! 2. RNG-keyed modules record **counts and sizes only**; durations are
//!    measured by the stages around them.
//!
//! Exposition text is byte-deterministic for identical recorded values,
//! but recorded *durations* are wall-clock facts — scrapes from two runs
//! differ in latency metrics even when the landed databases are
//! byte-identical.

#![forbid(unsafe_code)]

pub mod clock;
mod metrics;
mod registry;

pub use metrics::{
    bucket_floor, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, N_BUCKETS,
};
pub use registry::{Registry, Snapshot};
