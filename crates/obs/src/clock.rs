//! The workspace's single sanctioned wall-clock read site.
//!
//! Every monotonic time read in the PANDA workspace funnels through this
//! module so the determinism lint can enforce the boundary mechanically:
//! `panda-check`'s `banned_api` rule denies `Instant::now` /
//! `SystemTime::now` tokens in the instrumented crates, and only the
//! suppressions in this file are sanctioned. Timing read here is
//! *observational* — it feeds histograms and deadlines, never an RNG
//! stream, so the released database stays a pure function of
//! `(seed, arrival order)`.
//!
//! The readings are coarse by contract: callers get monotonicity and
//! roughly scheduler-tick accuracy, nothing finer — good enough for stage
//! latency histograms with 12.5%-wide buckets, and cheap enough
//! (one `clock_gettime` vDSO call, no syscall) for per-frame use.

use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide epoch: the first clock use after process start.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // panda-check: allow(banned_api): the one sanctioned clock read site
    *EPOCH.get_or_init(Instant::now)
}

/// A monotonic instant — the sanctioned replacement for `Instant::now()`.
///
/// Returned as a `std::time::Instant` so deadline arithmetic
/// (`checked_add`, `saturating_duration_since`, …) works unchanged at the
/// call sites that migrated here.
#[inline]
pub fn now() -> Instant {
    // panda-check: allow(banned_api): the one sanctioned clock read site
    Instant::now()
}

/// Monotonic nanoseconds since the process epoch (the first clock use).
///
/// The raw-integer form the histogram instruments record: cheap to
/// subtract, no `Duration` round trip on the hot path.
#[inline]
pub fn monotonic_ns() -> u64 {
    now().duration_since(epoch()).as_nanos() as u64
}

/// Nanoseconds elapsed since `start` (saturating, never panics).
#[inline]
pub fn ns_since(start: Instant) -> u64 {
    now().saturating_duration_since(start).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_is_monotone() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        let c = monotonic_ns();
        assert!(a <= b && b <= c);
    }

    #[test]
    fn ns_since_measures_forward_and_saturates_backward() {
        let start = now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(ns_since(start) >= 1_000_000);
        // A start in the future saturates to zero rather than panicking.
        let future = now() + std::time::Duration::from_secs(3600);
        assert_eq!(ns_since(future), 0);
    }
}
