//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are cheap cloneable handles over shared atomics, so a
//! component can keep its own handle for hot-path recording while a
//! [`crate::Registry`] holds another for snapshotting. Recording is
//! relaxed-ordering only — metrics are monitoring facts, not
//! synchronisation edges.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(panda_obs_off))]
        self.inner.fetch_add(n, Ordering::Relaxed);
        #[cfg(panda_obs_off)]
        let _ = n;
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, busy workers): goes up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(panda_obs_off))]
        self.inner.store(v, Ordering::Relaxed);
        #[cfg(panda_obs_off)]
        let _ = v;
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        #[cfg(not(panda_obs_off))]
        self.inner.fetch_add(n, Ordering::Relaxed);
        #[cfg(panda_obs_off)]
        let _ = n;
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// Atomic stripes per histogram: enough that eight recording threads
/// rarely collide on one cache line, small enough to stay trivially
/// mergeable at snapshot time.
const STRIPES: usize = 8;

/// Linear sub-buckets per power-of-two octave (8 ⇒ bucket width is 1/8 of
/// the octave, so a quantile read from a bucket floor under-estimates the
/// true value by at most 12.5%).
const SUB: usize = 8;

/// Total fixed bucket count: values `0..8` get exact unit buckets, then
/// 61 octaves (`2³ ..= 2⁶³`) of [`SUB`] sub-buckets cover all of `u64`.
pub const N_BUCKETS: usize = SUB + 61 * SUB;

/// The bucket a value lands in. Total over `u64`, monotone in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        (exp - 3) * SUB + ((v >> (exp - 3)) & 7) as usize + SUB
    }
}

/// The smallest value landing in bucket `index` (the quantile
/// representative). Inverse of [`bucket_index`] on bucket floors.
#[inline]
pub fn bucket_floor(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let exp = index / SUB + 2;
        let sub = (index % SUB) as u64;
        (1u64 << exp) + (sub << (exp - 3))
    }
}

/// One stripe of bucket counters, cache-line aligned so stripes never
/// false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Stripe {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The stable stripe this thread records into: threads round-robin over
/// stripes at first use, so up to [`STRIPES`] recorders proceed without
/// contending on one atomic.
#[inline]
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// A fixed-bucket log₂-scaled histogram of `u64` samples (latencies in
/// nanoseconds, batch sizes in reports — the unit is the caller's, named
/// by metric-name suffix convention: `_ns`, `_reports`, `_bytes`).
///
/// Recording touches one thread-striped bucket counter and the stripe
/// sum; stripes merge into an exact total at [`Histogram::snapshot`]
/// time. Quantiles read from bucket floors under-estimate by at most
/// 12.5% (one sub-bucket width).
#[derive(Clone, Debug)]
pub struct Histogram {
    stripes: Arc<[Stripe; STRIPES]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            stripes: Arc::new(std::array::from_fn(|_| Stripe::new())),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(panda_obs_off))]
        {
            let stripe = &self.stripes[stripe_index()];
            stripe.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            stripe.sum.fetch_add(value, Ordering::Relaxed);
        }
        #[cfg(panda_obs_off)]
        let _ = value;
    }

    /// Runs `f`, recording its wall-clock duration in nanoseconds. With
    /// telemetry compiled out (`--cfg panda_obs_off`) this is exactly
    /// `f()` — no clock reads — so hot paths can time themselves without
    /// any `cfg` noise at the call site.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        #[cfg(not(panda_obs_off))]
        {
            let start = crate::clock::now();
            let out = f();
            self.record(crate::clock::ns_since(start));
            out
        }
        #[cfg(panda_obs_off)]
        f()
    }

    /// Merges all stripes into an exact point-in-time view. Concurrent
    /// recording races individual samples in or out, never corrupts
    /// totals: every recorded sample is in exactly one stripe bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; N_BUCKETS];
        let mut sum = 0u64;
        for stripe in self.stripes.iter() {
            sum = sum.wrapping_add(stripe.sum.load(Ordering::Relaxed));
            for (total, bucket) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *total += bucket.load(Ordering::Relaxed);
            }
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }
}

/// An immutable merged view of a [`Histogram`]: per-bucket counts plus
/// exact count/sum, with quantiles derivable from the buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by the ceil-rank rule, read as the
    /// floor of the bucket holding the rank-th smallest sample — so the
    /// estimate never exceeds the true value and under-estimates by at
    /// most 12.5% (one sub-bucket). `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(index);
            }
        }
        bucket_floor(N_BUCKETS - 1)
    }

    /// Per-bucket counts (length [`N_BUCKETS`]), for renderers.
    pub(crate) fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);

        let g = Gauge::new();
        g.set(7);
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_index_is_total_and_monotone_with_floor_inverse() {
        // Exhaustive over the small linear range plus every octave edge.
        let mut probes: Vec<u64> = (0..64).collect();
        for exp in 3..=63u32 {
            let base = 1u64 << exp;
            for delta in [0u64, 1, 2, 7] {
                probes.push(base.saturating_add(delta));
                probes.push(base.saturating_sub(delta));
            }
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut last = 0usize;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
            // v lands inside [floor(idx), floor(idx+1)).
            assert!(bucket_floor(idx) <= v, "floor above value at {v}");
            if idx + 1 < N_BUCKETS {
                assert!(v < bucket_floor(idx + 1), "value past ceiling at {v}");
            }
        }
        // Floors are fixed points of the index map.
        for idx in 0..N_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(idx)), idx);
        }
    }

    #[test]
    fn quantile_error_is_bounded_by_one_sub_bucket() {
        // A deterministic spread across five orders of magnitude.
        let mut values: Vec<u64> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(2654435761) % 1_000_000) + 1)
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), values.len() as u64);
        assert_eq!(snap.sum(), values.iter().sum::<u64>());
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = snap.quantile(q);
            assert!(est <= exact, "q={q}: estimate {est} above exact {exact}");
            // Within one sub-bucket: exact < est * 9/8 (+1 for the unit range).
            assert!(
                exact <= est + est / 8 + 1,
                "q={q}: estimate {est} more than 12.5% below exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_merges_exactly() {
        let h = Histogram::new();
        let c = Counter::new();
        let threads = 8usize;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t as u64 * 1000 + i % 997);
                        c.inc();
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(c.get(), threads as u64 * per_thread);
        assert_eq!(snap.count(), threads as u64 * per_thread);
        // The merged histogram equals a single-threaded reference exactly.
        let reference = Histogram::new();
        for t in 0..threads {
            for i in 0..per_thread {
                reference.record(t as u64 * 1000 + i % 997);
            }
        }
        assert_eq!(snap, reference.snapshot());
    }
}
