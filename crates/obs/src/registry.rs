//! The metric [`Registry`] and its rendered [`Snapshot`].
//!
//! A registry is a named directory of metric handles. Registration and
//! snapshotting take a mutex (cold paths); recording through the handles
//! never does. Names follow the Prometheus convention
//! (`panda_<component>_<what>[_total|_ns|_reports]`, `[a-z0-9_]`), and
//! every read path is `BTreeMap`-ordered so the exposition text is
//! byte-deterministic for identical recorded values.

use crate::metrics::{bucket_floor, Counter, Gauge, Histogram, HistogramSnapshot, N_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named directory of metrics. Create one per scrape scope (a pipeline,
/// a gateway, a router); handles are get-or-create by name.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A poisoned registry lock only means a panic elsewhere mid-update of
    /// the *directory*; the atomics behind the handles are always valid,
    /// so recover rather than propagate.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter registered under `name`, creating it on first use. A
    /// same-named metric of another kind is replaced (last writer wins —
    /// components own disjoint name prefixes by convention).
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        if let Some(Metric::Counter(c)) = metrics.get(name) {
            return c.clone();
        }
        let c = Counter::new();
        metrics.insert(name.to_string(), Metric::Counter(c.clone()));
        c
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        if let Some(Metric::Gauge(g)) = metrics.get(name) {
            return g.clone();
        }
        let g = Gauge::new();
        metrics.insert(name.to_string(), Metric::Gauge(g.clone()));
        g
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.lock();
        if let Some(Metric::Histogram(h)) = metrics.get(name) {
            return h.clone();
        }
        let h = Histogram::new();
        metrics.insert(name.to_string(), Metric::Histogram(h.clone()));
        h
    }

    /// Adopts an existing counter handle under `name` (replacing any
    /// previous registration — how a policy switch re-points the cache
    /// metrics at the new index's handles).
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        self.lock()
            .insert(name.to_string(), Metric::Counter(counter.clone()));
    }

    /// Adopts an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        self.lock()
            .insert(name.to_string(), Metric::Gauge(gauge.clone()));
    }

    /// Adopts an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        self.lock()
            .insert(name.to_string(), Metric::Histogram(histogram.clone()));
    }

    /// A point-in-time read of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.lock();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Shorthand: snapshot and render the text exposition.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// A point-in-time value capture of a [`Registry`], with deterministic
/// text exposition. Snapshots from disjoint registries merge (how a
/// gateway's scrape joins its own frame metrics with its pipeline's).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The captured counter value, if one was registered under `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The captured gauge level, if one was registered under `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The captured histogram, if one was registered under `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`; on a name clash `other` wins.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, &v) in &other.counters {
            self.counters.insert(name.clone(), v);
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        for (name, h) in &other.histograms {
            self.histograms.insert(name.clone(), h.clone());
        }
    }

    /// Prometheus-style text exposition, byte-deterministic for identical
    /// captured values: metrics in name order, one `# TYPE` line each;
    /// histograms as cumulative non-empty `_bucket{le="…"}` lines (the
    /// label is the bucket's inclusive upper bound) closed by `+Inf`,
    /// `_sum` and `_count`.
    pub fn render(&self) -> String {
        enum Entry<'a> {
            Counter(u64),
            Gauge(i64),
            Histogram(&'a HistogramSnapshot),
        }
        let mut entries: BTreeMap<&str, Entry<'_>> = BTreeMap::new();
        for (name, &v) in &self.counters {
            entries.insert(name, Entry::Counter(v));
        }
        for (name, &v) in &self.gauges {
            entries.insert(name, Entry::Gauge(v));
        }
        for (name, h) in &self.histograms {
            entries.insert(name, Entry::Histogram(h));
        }

        let mut out = String::new();
        for (name, entry) in entries {
            match entry {
                Entry::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                Entry::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                Entry::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (index, &n) in h.buckets().iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        if index + 1 < N_BUCKETS {
                            let le = bucket_floor(index + 1) - 1;
                            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}",
                        h.count(),
                        h.sum(),
                        h.count()
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_underlying_cell() {
        let reg = Registry::new();
        let a = reg.counter("panda_test_events_total");
        let b = reg.counter("panda_test_events_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("panda_test_events_total"), Some(3));
    }

    #[test]
    fn adopting_a_handle_replaces_the_registration() {
        let reg = Registry::new();
        reg.counter("panda_test_hits_total").add(5);
        let fresh = Counter::new();
        fresh.add(9);
        reg.register_counter("panda_test_hits_total", &fresh);
        assert_eq!(reg.snapshot().counter("panda_test_hits_total"), Some(9));
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let reg = Registry::new();
        reg.counter("panda_test_c_total").add(7);
        reg.gauge("panda_test_depth").set(-3);
        reg.histogram("panda_test_lat_ns").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("panda_test_c_total"), Some(7));
        assert_eq!(snap.gauge("panda_test_depth"), Some(-3));
        assert_eq!(
            snap.histogram("panda_test_lat_ns").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(snap.counter("panda_test_missing"), None);
    }

    #[test]
    fn render_is_byte_deterministic_across_identical_registries() {
        let build = || {
            let reg = Registry::new();
            // Registration order deliberately differs from name order.
            reg.histogram("panda_z_lat_ns").record(1000);
            reg.histogram("panda_z_lat_ns").record(8);
            reg.counter("panda_a_events_total").add(3);
            reg.gauge("panda_m_depth").set(42);
            reg.render()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "identical recorded values must render identically");
        assert_eq!(a, build());
        // Name-ordered: the counter section precedes gauge precedes histogram.
        let (ia, im, iz) = (
            a.find("panda_a_events_total").unwrap(),
            a.find("panda_m_depth").unwrap(),
            a.find("panda_z_lat_ns").unwrap(),
        );
        assert!(ia < im && im < iz);
    }

    #[test]
    fn render_shapes_histogram_lines() {
        let reg = Registry::new();
        let h = reg.histogram("panda_test_ns");
        h.record(3);
        h.record(3);
        h.record(1_000_000);
        let text = reg.render();
        assert!(text.contains("# TYPE panda_test_ns histogram"), "{text}");
        assert!(text.contains("panda_test_ns_bucket{le=\"3\"} 2"), "{text}");
        assert!(
            text.contains("panda_test_ns_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("panda_test_ns_sum 1000006"), "{text}");
        assert!(text.contains("panda_test_ns_count 3"), "{text}");
    }

    #[test]
    fn merge_prefers_other_on_clash_and_unions_otherwise() {
        let a = Registry::new();
        a.counter("panda_shared_total").add(1);
        a.counter("panda_only_a_total").add(2);
        let b = Registry::new();
        b.counter("panda_shared_total").add(10);
        b.gauge("panda_only_b_depth").set(5);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("panda_shared_total"), Some(10));
        assert_eq!(snap.counter("panda_only_a_total"), Some(2));
        assert_eq!(snap.gauge("panda_only_b_depth"), Some(5));
    }
}
