//! Bayesian inference and the optimal location estimators.
//!
//! Given a release `z`, the attacker computes
//! `post(s) ∝ prior(s) · P(z | s)` and answers with either the MAP cell or
//! the cell minimising posterior-expected Euclidean distance (the optimal
//! estimator for the Shokri error metric — a discrete Fermat–Weber point).

use crate::likelihood::LikelihoodModel;
use crate::prior::Prior;
use panda_geo::{CellId, GridMap};
use serde::{Deserialize, Serialize};

/// Which answer the attacker returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BayesEstimator {
    /// Posterior mode (maximises hit probability).
    Map,
    /// Minimiser of posterior-expected Euclidean distance (minimises the
    /// Shokri adversary-error metric — the strongest attack for it).
    MinExpectedDistance,
}

/// Posterior over true locations given release `z`: dense vector indexed by
/// cell. Cells with zero prior or zero likelihood get zero mass.
///
/// Returns `None` when the evidence has probability zero under the model
/// (cannot happen for smoothed likelihoods/priors).
pub fn posterior(prior: &Prior, like: &LikelihoodModel, z: CellId) -> Option<Vec<f64>> {
    let n = like.n_cells();
    let mut post = vec![0.0f64; n];
    let mut total = 0.0;
    for (s, slot) in post.iter_mut().enumerate() {
        let w = prior.prob(CellId(s as u32)) * like.prob(CellId(s as u32), z);
        *slot = w;
        total += w;
    }
    if total <= 0.0 {
        return None;
    }
    for p in &mut post {
        *p /= total;
    }
    Some(post)
}

/// The attacker's point estimate for release `z`.
pub fn estimate(
    grid: &GridMap,
    prior: &Prior,
    like: &LikelihoodModel,
    z: CellId,
    estimator: BayesEstimator,
) -> Option<CellId> {
    let post = posterior(prior, like, z)?;
    match estimator {
        BayesEstimator::Map => post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| CellId(i as u32)),
        BayesEstimator::MinExpectedDistance => {
            // argmin_c Σ_s post(s)·d_E(c, s) over cells with posterior
            // support's bounding candidates: evaluating every grid cell is
            // exact (domains are ≤ a few thousand cells).
            let support: Vec<(CellId, f64)> = post
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p > 0.0)
                .map(|(i, &p)| (CellId(i as u32), p))
                .collect();
            let mut best = None;
            let mut best_cost = f64::INFINITY;
            for cand in grid.cells() {
                let cost: f64 = support
                    .iter()
                    .map(|&(s, p)| p * grid.distance(cand, s))
                    .sum();
                if cost < best_cost {
                    best_cost = cost;
                    best = Some(cand);
                }
            }
            best
        }
    }
}

/// Posterior-expected distance of a given answer — the attacker's own
/// assessment of its error.
pub fn expected_distance(grid: &GridMap, post: &[f64], answer: CellId) -> f64 {
    post.iter()
        .enumerate()
        .map(|(s, &p)| p * grid.distance(answer, CellId(s as u32)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::{GraphExponential, LocationPolicyGraph, UniformComponent};
    use panda_geo::GridMap;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    #[test]
    fn posterior_normalises() {
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 2, 2);
        let like = LikelihoodModel::build(&GraphExponential, &policy, 1.0, 0).unwrap();
        let prior = Prior::uniform(&g);
        let post = posterior(&prior, &like, CellId(0)).unwrap();
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn posterior_concentrates_with_high_eps() {
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 2, 2);
        let like = LikelihoodModel::build(&GraphExponential, &policy, 12.0, 0).unwrap();
        let prior = Prior::uniform(&g);
        let post = posterior(&prior, &like, CellId(0)).unwrap();
        assert!(
            post[0] > 0.95,
            "high eps must pin the posterior: {}",
            post[0]
        );
    }

    #[test]
    fn uniform_mechanism_posterior_is_prior_restricted() {
        // With a uniform-in-component release, the posterior over the
        // component equals the prior renormalised to it.
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 2, 2);
        let like = LikelihoodModel::build(&UniformComponent, &policy, 1.0, 0).unwrap();
        let mut weights = vec![1.0; 16];
        weights[0] = 5.0; // skewed prior
        let prior = Prior::from_weights(weights);
        let post = posterior(&prior, &like, CellId(0)).unwrap();
        let comp = policy.component_cells(CellId(0));
        let prior_mass: f64 = comp.iter().map(|&c| prior.prob(c)).sum();
        for &c in &comp {
            assert!((post[c.index()] - prior.prob(c) / prior_mass).abs() < 1e-9);
        }
    }

    #[test]
    fn map_estimator_picks_mode() {
        let g = grid();
        let policy = LocationPolicyGraph::partition(g.clone(), 2, 2);
        let like = LikelihoodModel::build(&GraphExponential, &policy, 4.0, 0).unwrap();
        let prior = Prior::uniform(&g);
        let est = estimate(&g, &prior, &like, CellId(5), BayesEstimator::Map).unwrap();
        assert_eq!(est, CellId(5), "at high eps the release is the MAP");
    }

    #[test]
    fn min_expected_distance_beats_map_on_its_metric() {
        let g = grid();
        let policy = LocationPolicyGraph::complete(g.clone());
        let like = LikelihoodModel::build(&GraphExponential, &policy, 0.3, 0).unwrap();
        let prior = Prior::uniform(&g);
        for z in [CellId(0), CellId(7), CellId(15)] {
            let post = posterior(&prior, &like, z).unwrap();
            let map = estimate(&g, &prior, &like, z, BayesEstimator::Map).unwrap();
            let med = estimate(&g, &prior, &like, z, BayesEstimator::MinExpectedDistance).unwrap();
            assert!(expected_distance(&g, &post, med) <= expected_distance(&g, &post, map) + 1e-9);
        }
    }

    #[test]
    fn expected_distance_zero_for_point_posterior() {
        let g = grid();
        let mut post = vec![0.0; 16];
        post[3] = 1.0;
        assert_eq!(expected_distance(&g, &post, CellId(3)), 0.0);
        assert!(expected_distance(&g, &post, CellId(0)) > 0.0);
    }
}
