//! Optimal remapping: utility-optimal post-processing of a PGLP mechanism.
//!
//! A release `z` can be *remapped* through any fixed function `R(z)` without
//! weakening {ε,G}-location privacy — post-processing cannot increase
//! privacy loss. Choosing `R(z)` as the Bayes-optimal answer under a public
//! prior (the geometric-median of the posterior) is the classical
//! "optimal remap" of the geo-indistinguishability literature: same privacy,
//! strictly better expected utility when the prior is informative.
//!
//! This is an *extension* feature (DESIGN.md §6 ablation): the demo paper
//! does not evaluate remapping, but any production deployment of PGLP
//! would, and the `remap` bench quantifies the utility gain.

use crate::bayes::{estimate, BayesEstimator};
use crate::likelihood::LikelihoodModel;
use crate::prior::Prior;
use panda_core::{LocationPolicyGraph, Mechanism, PglpError};
use panda_geo::CellId;
use rand::RngCore;

/// A mechanism wrapper that applies a precomputed optimal remap to every
/// release of the base mechanism.
pub struct RemappedMechanism<'a> {
    base: &'a dyn Mechanism,
    /// `remap[z] = R(z)`, dense over the grid.
    remap: Vec<CellId>,
}

impl<'a> RemappedMechanism<'a> {
    /// Builds the remap table for `(base, policy, eps)` against `prior`.
    ///
    /// `mc_samples` is forwarded to the likelihood builder for mechanisms
    /// without closed-form distributions. The table maps every possible
    /// release to the posterior minimum-expected-distance cell.
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors from likelihood estimation.
    pub fn build(
        base: &'a dyn Mechanism,
        policy: &LocationPolicyGraph,
        eps: f64,
        prior: &Prior,
        mc_samples: usize,
    ) -> Result<Self, PglpError> {
        let like = LikelihoodModel::build(base, policy, eps, mc_samples)?;
        let grid = policy.grid();
        let remap = grid
            .cells()
            .map(|z| {
                estimate(grid, prior, &like, z, BayesEstimator::MinExpectedDistance)
                    // A release no input can produce has a dead posterior;
                    // map it to itself (it will never occur).
                    .unwrap_or(z)
            })
            .collect();
        Ok(RemappedMechanism { base, remap })
    }

    /// The remap target for a release.
    pub fn remap_of(&self, z: CellId) -> CellId {
        self.remap[z.index()]
    }
}

impl Mechanism for RemappedMechanism<'_> {
    fn name(&self) -> &'static str {
        "remapped"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        let z = self.base.perturb(policy, eps, true_loc, rng)?;
        Ok(self.remap[z.index()])
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        let base = self.base.output_distribution(policy, eps, true_loc)?;
        let mut acc: std::collections::BTreeMap<CellId, f64> = std::collections::BTreeMap::new();
        for (z, p) in base {
            *acc.entry(self.remap[z.index()]).or_insert(0.0) += p;
        }
        Some(acc.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::{audit_pglp, GraphExponential, LocationPolicyGraph};
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(5, 5, 100.0)
    }

    #[test]
    fn remap_preserves_pglp_exactly() {
        // Post-processing invariance, audited rather than assumed.
        let policy = LocationPolicyGraph::complete(grid());
        let prior = Prior::uniform(policy.grid());
        let eps = 1.0;
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, eps, &prior, 0).unwrap();
        let report = audit_pglp(&remapped, &policy, eps).unwrap();
        assert!(report.exact);
        assert!(report.satisfied, "{report:?}");
    }

    #[test]
    fn remap_improves_utility_under_skewed_prior() {
        // Victim is concentrated in one corner; the remap pulls noisy
        // releases toward it, cutting expected error.
        let g = grid();
        let policy = LocationPolicyGraph::complete(g.clone());
        let mut weights = vec![0.05; 25];
        weights[g.cell(0, 0).index()] = 10.0;
        weights[g.cell(1, 0).index()] = 5.0;
        weights[g.cell(0, 1).index()] = 5.0;
        let prior = Prior::from_weights(weights);
        let eps = 0.4;
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, eps, &prior, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        const N: usize = 4000;
        let (mut base_err, mut remap_err) = (0.0, 0.0);
        for _ in 0..N {
            let truth = prior.sample(&mut rng);
            let z0 = GraphExponential
                .perturb(&policy, eps, truth, &mut rng)
                .unwrap();
            let z1 = remapped.perturb(&policy, eps, truth, &mut rng).unwrap();
            base_err += g.distance(truth, z0);
            remap_err += g.distance(truth, z1);
        }
        assert!(
            remap_err < base_err,
            "remap must improve utility: {} !< {}",
            remap_err / N as f64,
            base_err / N as f64
        );
    }

    #[test]
    fn remapped_distribution_normalises() {
        let policy = LocationPolicyGraph::partition(grid(), 2, 2);
        let prior = Prior::uniform(policy.grid());
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, 1.0, &prior, 0).unwrap();
        let dist = remapped
            .output_distribution(&policy, 1.0, CellId(0))
            .unwrap();
        let total: f64 = dist.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_prior_remap_is_mild() {
        // With a flat prior over a symmetric component the remap mostly
        // keeps releases in place (no information to exploit).
        let policy = LocationPolicyGraph::complete(grid());
        let prior = Prior::uniform(policy.grid());
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, 1.0, &prior, 0).unwrap();
        // Centre cell maps to itself by symmetry.
        let centre = policy.grid().cell(2, 2);
        assert_eq!(remapped.remap_of(centre), centre);
    }
}
