//! Optimal remapping: utility-optimal post-processing of a PGLP mechanism.
//!
//! A release `z` can be *remapped* through any fixed function `R(z)` without
//! weakening {ε,G}-location privacy — post-processing cannot increase
//! privacy loss. Choosing `R(z)` as the Bayes-optimal answer under a public
//! prior (the geometric-median of the posterior) is the classical
//! "optimal remap" of the geo-indistinguishability literature: same privacy,
//! strictly better expected utility when the prior is informative.
//!
//! This is an *extension* feature (DESIGN.md §6 ablation): the demo paper
//! does not evaluate remapping, but any production deployment of PGLP
//! would, and the `remap` bench quantifies the utility gain.

use crate::bayes::{estimate, BayesEstimator};
use crate::likelihood::LikelihoodModel;
use crate::prior::Prior;
use panda_core::{CellSampler, LocationPolicyGraph, Mechanism, PglpError, PolicyIndex};
use panda_geo::CellId;
use rand::RngCore;

/// A mechanism wrapper that applies a precomputed optimal remap to every
/// release of the base mechanism.
pub struct RemappedMechanism<'a> {
    base: &'a dyn Mechanism,
    /// `remap[z] = R(z)`, dense over the grid.
    remap: Vec<CellId>,
}

impl<'a> RemappedMechanism<'a> {
    /// Builds the remap table for `(base, policy, eps)` against `prior`.
    ///
    /// `mc_samples` is forwarded to the likelihood builder for mechanisms
    /// without closed-form distributions. The table maps every possible
    /// release to the posterior minimum-expected-distance cell.
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors from likelihood estimation.
    pub fn build(
        base: &'a dyn Mechanism,
        policy: &LocationPolicyGraph,
        eps: f64,
        prior: &Prior,
        mc_samples: usize,
    ) -> Result<Self, PglpError> {
        let like = LikelihoodModel::build(base, policy, eps, mc_samples)?;
        let grid = policy.grid();
        let remap = grid
            .cells()
            .map(|z| {
                estimate(grid, prior, &like, z, BayesEstimator::MinExpectedDistance)
                    // A release no input can produce has a dead posterior;
                    // map it to itself (it will never occur).
                    .unwrap_or(z)
            })
            .collect();
        Ok(RemappedMechanism { base, remap })
    }

    /// The remap target for a release.
    pub fn remap_of(&self, z: CellId) -> CellId {
        self.remap[z.index()]
    }
}

impl Mechanism for RemappedMechanism<'_> {
    fn name(&self) -> &'static str {
        "remapped"
    }

    fn perturb(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CellId, PglpError> {
        let z = self.base.perturb(policy, eps, true_loc, rng)?;
        Ok(self.remap[z.index()])
    }

    fn output_distribution(
        &self,
        policy: &LocationPolicyGraph,
        eps: f64,
        true_loc: CellId,
    ) -> Option<Vec<(CellId, f64)>> {
        let base = self.base.output_distribution(policy, eps, true_loc)?;
        let mut acc: std::collections::BTreeMap<CellId, f64> = std::collections::BTreeMap::new();
        for (z, p) in base {
            *acc.entry(self.remap[z.index()]).or_insert(0.0) += p;
        }
        Some(acc.into_iter().collect())
    }

    /// Delegates to the base mechanism's batched path and applies the remap
    /// table in place. Crucially this **never caches under this wrapper's
    /// non-unique `name()`**: the base releases under its own cache keys, so
    /// two wrappers over different bases can share one [`PolicyIndex`]
    /// without colliding in the distribution cache.
    fn perturb_batch_into(
        &self,
        index: &PolicyIndex,
        eps: f64,
        locs: &[CellId],
        rng: &mut dyn RngCore,
        out: &mut [CellId],
    ) -> Result<(), PglpError> {
        let result = self.base.perturb_batch_into(index, eps, locs, rng, out);
        // Remap even the partially-written prefix of a failed batch: the
        // trait contract leaves only positions at/after the failure
        // unspecified, so the prefix must hold *remapped* cells. `get`
        // guards the unspecified tail (arbitrary caller-provided ids).
        for slot in out.iter_mut() {
            if let Some(&r) = self.remap.get(slot.index()) {
                *slot = r;
            }
        }
        result
    }

    /// The base mechanism's handle wrapped in the remap table — shared-cache
    /// entries stay keyed by the base's unique name.
    fn sampler<'a>(
        &'a self,
        index: &'a PolicyIndex,
        eps: f64,
        cell: CellId,
    ) -> Result<CellSampler<'a>, PglpError> {
        Ok(CellSampler::remapped(
            self.base.sampler(index, eps, cell)?,
            &self.remap,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::{audit_pglp, GraphExponential, LocationPolicyGraph};
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(5, 5, 100.0)
    }

    #[test]
    fn remap_preserves_pglp_exactly() {
        // Post-processing invariance, audited rather than assumed.
        let policy = LocationPolicyGraph::complete(grid());
        let prior = Prior::uniform(policy.grid());
        let eps = 1.0;
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, eps, &prior, 0).unwrap();
        let report = audit_pglp(&remapped, &policy, eps).unwrap();
        assert!(report.exact);
        assert!(report.satisfied, "{report:?}");
    }

    #[test]
    fn remap_improves_utility_under_skewed_prior() {
        // Victim is concentrated in one corner; the remap pulls noisy
        // releases toward it, cutting expected error.
        let g = grid();
        let policy = LocationPolicyGraph::complete(g.clone());
        let mut weights = vec![0.05; 25];
        weights[g.cell(0, 0).index()] = 10.0;
        weights[g.cell(1, 0).index()] = 5.0;
        weights[g.cell(0, 1).index()] = 5.0;
        let prior = Prior::from_weights(weights);
        let eps = 0.4;
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, eps, &prior, 0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        const N: usize = 4000;
        let (mut base_err, mut remap_err) = (0.0, 0.0);
        for _ in 0..N {
            let truth = prior.sample(&mut rng);
            let z0 = GraphExponential
                .perturb(&policy, eps, truth, &mut rng)
                .unwrap();
            let z1 = remapped.perturb(&policy, eps, truth, &mut rng).unwrap();
            base_err += g.distance(truth, z0);
            remap_err += g.distance(truth, z1);
        }
        assert!(
            remap_err < base_err,
            "remap must improve utility: {} !< {}",
            remap_err / N as f64,
            base_err / N as f64
        );
    }

    #[test]
    fn remapped_distribution_normalises() {
        let policy = LocationPolicyGraph::partition(grid(), 2, 2);
        let prior = Prior::uniform(policy.grid());
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, 1.0, &prior, 0).unwrap();
        let dist = remapped
            .output_distribution(&policy, 1.0, CellId(0))
            .unwrap();
        let total: f64 = dist.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    /// The batched path must be the base's batched path plus the remap
    /// table — bit for bit, so the wrapper inherits the release engine's
    /// determinism contract.
    #[test]
    fn batched_path_is_base_plus_remap_bitwise() {
        use panda_core::{PolicyIndex, UniformComponent};
        let policy = LocationPolicyGraph::partition(grid(), 2, 2);
        let prior = Prior::uniform(policy.grid());
        let index = PolicyIndex::new(policy.clone());
        let eps = 0.7;
        let bases: [&dyn Mechanism; 2] = [&GraphExponential, &UniformComponent];
        for base in bases {
            let remapped = RemappedMechanism::build(base, &policy, eps, &prior, 0).unwrap();
            let locs: Vec<CellId> = (0..500).map(|i| CellId(i % 25)).collect();
            let mut rng_a = SmallRng::seed_from_u64(7);
            let mut rng_b = SmallRng::seed_from_u64(7);
            let wrapped = remapped
                .perturb_batch(&index, eps, &locs, &mut rng_a)
                .unwrap();
            let raw = base.perturb_batch(&index, eps, &locs, &mut rng_b).unwrap();
            for (w, r) in wrapped.iter().zip(raw) {
                assert_eq!(*w, remapped.remap_of(r), "{}", base.name());
            }
        }
    }

    /// Two wrappers over *different* bases sharing one `PolicyIndex` must
    /// not collide in the distribution cache (the old static `"remapped"`
    /// name would have keyed both bases' tables identically).
    #[test]
    fn wrappers_over_different_bases_share_an_index_safely() {
        use panda_core::{EuclideanExponential, PolicyIndex};
        let policy = LocationPolicyGraph::partition(grid(), 2, 2);
        let prior = Prior::uniform(policy.grid());
        let index = PolicyIndex::new(policy.clone());
        let eps = 1.0;
        let over_gem =
            RemappedMechanism::build(&GraphExponential, &policy, eps, &prior, 0).unwrap();
        let over_euc =
            RemappedMechanism::build(&EuclideanExponential, &policy, eps, &prior, 0).unwrap();
        let locs = vec![CellId(0); 30_000];
        // Interleave so a shared cache key would serve the wrong table.
        let mut rng = SmallRng::seed_from_u64(3);
        let out_gem = over_gem
            .perturb_batch(&index, eps, &locs, &mut rng)
            .unwrap();
        let out_euc = over_euc
            .perturb_batch(&index, eps, &locs, &mut rng)
            .unwrap();
        let out_gem2 = over_gem
            .perturb_batch(&index, eps, &locs, &mut rng)
            .unwrap();
        let census = |out: &[CellId]| {
            let mut m = std::collections::HashMap::new();
            for &z in out {
                *m.entry(z).or_insert(0usize) += 1;
            }
            m
        };
        // Each wrapper must keep matching its own closed-form distribution
        // even after the other wrapper used the shared index.
        for (label, out, mech) in [
            ("gem", &out_gem, &over_gem),
            ("euc", &out_euc, &over_euc),
            ("gem-after-euc", &out_gem2, &over_gem),
        ] {
            let exact = mech.output_distribution(&policy, eps, CellId(0)).unwrap();
            let counts = census(out);
            for (c, p) in exact {
                let emp = *counts.get(&c).unwrap_or(&0) as f64 / locs.len() as f64;
                assert!(
                    (emp - p).abs() < 0.01,
                    "{label} cell {c}: empirical {emp} vs exact {p}"
                );
            }
        }
    }

    #[test]
    fn uniform_prior_remap_is_mild() {
        // With a flat prior over a symmetric component the remap mostly
        // keeps releases in place (no information to exploit).
        let policy = LocationPolicyGraph::complete(grid());
        let prior = Prior::uniform(policy.grid());
        let remapped =
            RemappedMechanism::build(&GraphExponential, &policy, 1.0, &prior, 0).unwrap();
        // Centre cell maps to itself by symmetry.
        let centre = policy.grid().cell(2, 2);
        assert_eq!(remapped.remap_of(centre), centre);
    }
}
