//! Trajectory tracking: the HMM attack over a *sequence* of releases.
//!
//! Shokri et al.'s strongest adversary does not attack epochs in isolation:
//! it chains them with a mobility model. The released trajectory is a
//! hidden Markov model — hidden state: true cell; transition: the public
//! [`MobilityKernel`]; emission: the mechanism likelihood `P(z | s)` — and
//! the attack is exact forward filtering / forward–backward smoothing.
//!
//! This quantifies the *temporal correlation* threat the PGLP technical
//! report warns about: per-epoch {ε,G} guarantees hold, yet an attacker
//! with a movement model reconstructs trajectories far better than the
//! per-epoch attack suggests. The `timeline` repair strategies in
//! `panda-core` exist precisely to blunt this attack, and the
//! `tracking_attack` test shows the effect.

use crate::bayes::BayesEstimator;
use crate::likelihood::LikelihoodModel;
use crate::prior::Prior;
use panda_geo::{CellId, GridMap};
use panda_mobility::markov::MobilityKernel;
use serde::{Deserialize, Serialize};

/// Result of a tracking attack on one trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackingReport {
    /// Per-epoch estimated cells.
    pub estimates: Vec<CellId>,
    /// Per-epoch Euclidean error vs. truth (grid length units).
    pub errors: Vec<f64>,
    /// Mean of `errors`.
    pub mean_error: f64,
    /// Fraction of epochs where the exact cell was named.
    pub hit_rate: f64,
}

/// The HMM tracking attacker.
pub struct Tracker<'a> {
    grid: &'a GridMap,
    kernel: &'a MobilityKernel,
    likelihood: &'a LikelihoodModel,
    /// Point-estimate rule applied to each epoch's posterior.
    pub estimator: BayesEstimator,
}

impl<'a> Tracker<'a> {
    /// Creates a tracker from public knowledge: grid, mobility kernel and
    /// mechanism likelihood.
    pub fn new(
        grid: &'a GridMap,
        kernel: &'a MobilityKernel,
        likelihood: &'a LikelihoodModel,
        estimator: BayesEstimator,
    ) -> Self {
        assert_eq!(kernel.n_cells(), grid.n_cells(), "kernel domain mismatch");
        Tracker {
            grid,
            kernel,
            likelihood,
            estimator,
        }
    }

    /// Forward (filtering) distributions: `alpha[t][s] = P(s_t = s | z_1..t)`.
    ///
    /// `observations[t] = None` means no release that epoch (pure
    /// prediction step).
    pub fn forward(&self, prior: &Prior, observations: &[Option<CellId>]) -> Vec<Vec<f64>> {
        let n = self.grid.n_cells() as usize;
        let mut alphas = Vec::with_capacity(observations.len());
        let mut current: Vec<f64> = prior.probs().to_vec();
        for (t, obs) in observations.iter().enumerate() {
            if t > 0 {
                current = self.kernel.evolve(&current);
            }
            if let Some(z) = obs {
                for (s, a) in current.iter_mut().enumerate() {
                    *a *= self.likelihood.prob(CellId(s as u32), *z);
                }
            }
            let total: f64 = current.iter().sum();
            if total > 0.0 {
                for a in &mut current {
                    *a /= total;
                }
            } else {
                // Impossible evidence under the model: reset to uniform
                // (keeps the attack well-defined; happens only with
                // unsmoothed likelihoods).
                current = vec![1.0 / n as f64; n];
            }
            alphas.push(current.clone());
        }
        alphas
    }

    /// Forward–backward (smoothing) posteriors
    /// `gamma[t][s] = P(s_t = s | z_1..T)`.
    pub fn smooth(&self, prior: &Prior, observations: &[Option<CellId>]) -> Vec<Vec<f64>> {
        let n = self.grid.n_cells() as usize;
        let alphas = self.forward(prior, observations);
        let t_max = observations.len();
        let mut betas = vec![vec![1.0f64; n]; t_max];
        for t in (0..t_max.saturating_sub(1)).rev() {
            // beta_t(s) = sum_{s'} K(s→s') · P(z_{t+1} | s') · beta_{t+1}(s')
            let mut row = vec![0.0f64; n];
            for (s, slot) in row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for &(target, p) in self.kernel.row(CellId(s as u32)) {
                    let emit = match observations[t + 1] {
                        Some(z) => self.likelihood.prob(target, z),
                        None => 1.0,
                    };
                    acc += p * emit * betas[t + 1][target.index()];
                }
                *slot = acc;
            }
            // Normalise for numerical stability.
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                for b in &mut row {
                    *b /= total;
                }
            }
            betas[t] = row;
        }
        alphas
            .into_iter()
            .zip(betas)
            .map(|(a, b)| {
                let mut g: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x * y).collect();
                let total: f64 = g.iter().sum();
                if total > 0.0 {
                    for v in &mut g {
                        *v /= total;
                    }
                }
                g
            })
            .collect()
    }

    fn point_estimate(&self, posterior: &[f64]) -> CellId {
        match self.estimator {
            BayesEstimator::Map => CellId(
                posterior
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0),
            ),
            BayesEstimator::MinExpectedDistance => {
                let support: Vec<(CellId, f64)> = posterior
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p > 0.0)
                    .map(|(i, &p)| (CellId(i as u32), p))
                    .collect();
                let mut best = CellId(0);
                let mut best_cost = f64::INFINITY;
                for cand in self.grid.cells() {
                    let cost: f64 = support
                        .iter()
                        .map(|&(s, p)| p * self.grid.distance(cand, s))
                        .sum();
                    if cost < best_cost {
                        best_cost = cost;
                        best = cand;
                    }
                }
                best
            }
        }
    }

    /// Runs the smoothing attack against a released trajectory and scores
    /// it against the truth.
    pub fn attack(
        &self,
        prior: &Prior,
        observations: &[Option<CellId>],
        truth: &[CellId],
    ) -> TrackingReport {
        assert_eq!(observations.len(), truth.len(), "length mismatch");
        let posteriors = self.smooth(prior, observations);
        let estimates: Vec<CellId> = posteriors
            .iter()
            .map(|post| self.point_estimate(post))
            .collect();
        let errors: Vec<f64> = estimates
            .iter()
            .zip(truth.iter())
            .map(|(&e, &s)| self.grid.distance(e, s))
            .collect();
        let mean_error = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        let hit_rate = estimates
            .iter()
            .zip(truth.iter())
            .filter(|(e, s)| e == s)
            .count() as f64
            / truth.len().max(1) as f64;
        TrackingReport {
            estimates,
            errors,
            mean_error,
            hit_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::{GraphExponential, LocationPolicyGraph, Mechanism};
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(5, 5, 100.0)
    }

    fn setup(eps: f64) -> (LocationPolicyGraph, LikelihoodModel, MobilityKernel) {
        let g = grid();
        let policy = LocationPolicyGraph::g1_geo_indistinguishability(g.clone());
        let like = LikelihoodModel::build(&GraphExponential, &policy, eps, 0).unwrap();
        let kernel = MobilityKernel::lazy_walk(&g, 0.6);
        (policy, like, kernel)
    }

    #[test]
    fn forward_distributions_normalise() {
        let g = grid();
        let (_, like, kernel) = setup(1.0);
        let tracker = Tracker::new(&g, &kernel, &like, BayesEstimator::Map);
        let prior = Prior::uniform(&g);
        let obs = vec![Some(CellId(12)), None, Some(CellId(13))];
        for alpha in tracker.forward(&prior, &obs) {
            assert!((alpha.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn smoothing_beats_independent_estimation() {
        // Walkers drawn from the tracker's own mobility model, observed
        // through noisy releases: in expectation the HMM attacker localises
        // at least as well as treating epochs separately (it uses strictly
        // more information). Averaged over 30 trajectories to wash out
        // single-path noise.
        let g = grid();
        let eps = 0.8;
        let (policy, like, kernel) = setup(eps);
        let prior = Prior::uniform(&g);
        let tracker = Tracker::new(&g, &kernel, &like, BayesEstimator::MinExpectedDistance);
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut hmm_total, mut indep_total) = (0.0, 0.0);
        for _ in 0..30 {
            // Truth: a lazy walk from a uniform start, 8 epochs.
            let mut cell = prior.sample(&mut rng);
            let mut truth = Vec::with_capacity(8);
            for _ in 0..8 {
                truth.push(cell);
                cell = kernel.step(&mut rng, cell);
            }
            let obs: Vec<Option<CellId>> = truth
                .iter()
                .map(|&s| Some(GraphExponential.perturb(&policy, eps, s, &mut rng).unwrap()))
                .collect();
            let report = tracker.attack(&prior, &obs, &truth);
            hmm_total += report.mean_error;
            for (z, s) in obs.iter().zip(truth.iter()) {
                let est = crate::bayes::estimate(
                    &g,
                    &prior,
                    &like,
                    z.unwrap(),
                    BayesEstimator::MinExpectedDistance,
                )
                .unwrap();
                indep_total += g.distance(est, *s) / truth.len() as f64;
            }
        }
        assert!(
            hmm_total <= indep_total,
            "HMM {} vs independent {} (mean over 30 walks)",
            hmm_total / 30.0,
            indep_total / 30.0
        );
    }

    #[test]
    fn missing_observations_fall_back_to_prediction() {
        let g = grid();
        let (_, like, kernel) = setup(2.0);
        let prior = Prior::uniform(&g);
        let tracker = Tracker::new(&g, &kernel, &like, BayesEstimator::Map);
        // Only the first epoch is observed; later epochs diffuse.
        let obs = vec![Some(CellId(12)), None, None, None];
        let alphas = tracker.forward(&prior, &obs);
        let entropy = |d: &[f64]| -> f64 {
            -d.iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| p * p.ln())
                .sum::<f64>()
        };
        assert!(
            entropy(&alphas[3]) > entropy(&alphas[0]),
            "belief must diffuse"
        );
    }

    #[test]
    fn high_eps_tracking_is_near_perfect() {
        let g = grid();
        let (policy, like, kernel) = setup(12.0);
        let prior = Prior::uniform(&g);
        let truth: Vec<CellId> = (0..5).map(|i| g.cell(i, 1)).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let obs: Vec<Option<CellId>> = truth
            .iter()
            .map(|&s| {
                Some(
                    GraphExponential
                        .perturb(&policy, 12.0, s, &mut rng)
                        .unwrap(),
                )
            })
            .collect();
        let tracker = Tracker::new(&g, &kernel, &like, BayesEstimator::Map);
        let report = tracker.attack(&prior, &obs, &truth);
        assert!(report.hit_rate > 0.7, "hit rate {}", report.hit_rate);
    }

    #[test]
    fn kernel_mismatch_panics() {
        let g = grid();
        let (_, like, _) = setup(1.0);
        let wrong = MobilityKernel::lazy_walk(&GridMap::new(3, 3, 100.0), 0.5);
        let result = std::panic::catch_unwind(|| {
            Tracker::new(&g, &wrong, &like, BayesEstimator::Map);
        });
        assert!(result.is_err());
    }
}
