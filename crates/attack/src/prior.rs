//! Adversary priors over the location domain.

use panda_geo::{CellId, GridMap};
use panda_mobility::TrajectoryDb;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A probability distribution over grid cells — the adversary's background
/// knowledge about where the user might be.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prior {
    probs: Vec<f64>,
}

impl Prior {
    /// Uniform prior over all cells.
    pub fn uniform(grid: &GridMap) -> Self {
        let n = grid.n_cells() as usize;
        Prior {
            probs: vec![1.0 / n as f64; n],
        }
    }

    /// Empirical prior from public mobility data: overall visit frequencies
    /// of a trajectory database, smoothed so no cell has probability zero
    /// (the attacker never fully rules out a cell).
    pub fn empirical(db: &TrajectoryDb) -> Self {
        let mut probs = db.empirical_distribution();
        let n = probs.len() as f64;
        let smoothing = 1e-6;
        let mut total = 0.0;
        for p in &mut probs {
            *p += smoothing / n;
            total += *p;
        }
        for p in &mut probs {
            *p /= total;
        }
        Prior { probs }
    }

    /// Personalised prior: the visit frequencies of a single user's history
    /// (what an attacker who profiled the victim would use), smoothed.
    pub fn personalised(grid: &GridMap, history: &[CellId]) -> Self {
        let n = grid.n_cells() as usize;
        let mut probs = vec![0.0f64; n];
        for c in history {
            probs[c.index()] += 1.0;
        }
        let smoothing = 0.5; // pseudo-count per cell
        let total: f64 = history.len() as f64 + smoothing * n as f64;
        for p in &mut probs {
            *p = (*p + smoothing) / total;
        }
        Prior { probs }
    }

    /// Builds a prior from explicit weights (normalised).
    ///
    /// # Panics
    ///
    /// Panics on negative weights or an all-zero vector.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|&w| w >= 0.0), "negative weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all-zero prior");
        Prior {
            probs: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Probability of `cell`.
    #[inline]
    pub fn prob(&self, cell: CellId) -> f64 {
        self.probs[cell.index()]
    }

    /// The dense probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when the domain is empty (never for valid grids).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Samples a cell from the prior.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CellId {
        let mut u: f64 = rng.gen();
        for (i, &p) in self.probs.iter().enumerate() {
            if u < p {
                return CellId(i as u32);
            }
            u -= p;
        }
        CellId(self.probs.len() as u32 - 1)
    }

    /// Shannon entropy (nats) — a summary of attacker uncertainty before
    /// seeing any release.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_mobility::{Trajectory, UserId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 100.0)
    }

    #[test]
    fn uniform_normalises() {
        let p = Prior::uniform(&grid());
        assert_eq!(p.len(), 16);
        assert!((p.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p.prob(CellId(3)) - 1.0 / 16.0).abs() < 1e-12);
        assert!((p.entropy() - (16.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn empirical_reflects_visits() {
        let g = grid();
        let db = TrajectoryDb::new(
            g.clone(),
            vec![Trajectory {
                user: UserId(0),
                cells: vec![g.cell(0, 0), g.cell(0, 0), g.cell(1, 1), g.cell(0, 0)],
            }],
        );
        let p = Prior::empirical(&db);
        assert!((p.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.prob(g.cell(0, 0)) > p.prob(g.cell(1, 1)));
        assert!(p.prob(g.cell(3, 3)) > 0.0, "smoothing must avoid zeros");
        assert!(p.prob(g.cell(0, 0)) > 0.5);
    }

    #[test]
    fn personalised_prior_peaks_on_history() {
        let g = grid();
        let history = vec![g.cell(2, 2); 10];
        let p = Prior::personalised(&g, &history);
        assert!((p.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.prob(g.cell(2, 2)) > 0.5);
        assert!(p.prob(g.cell(0, 0)) > 0.0);
    }

    #[test]
    fn from_weights_and_sampling() {
        let mut w = vec![0.0; 16];
        w[5] = 3.0;
        w[10] = 1.0;
        let p = Prior::from_weights(w);
        assert!((p.prob(CellId(5)) - 0.75).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut hits5 = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            let c = p.sample(&mut rng);
            assert!(c == CellId(5) || c == CellId(10));
            if c == CellId(5) {
                hits5 += 1;
            }
        }
        assert!((hits5 as f64 / N as f64 - 0.75).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_prior_rejected() {
        Prior::from_weights(vec![0.0; 4]);
    }
}
