//! The adversary-error experiment loop (Shokri et al., paper ref. 15).
//!
//! Empirical privacy of a (mechanism, policy, ε) triple against a prior:
//! draw a true location from the prior, release through the mechanism, let
//! the optimal Bayesian attacker answer, and average the Euclidean distance
//! between answer and truth. This is the quantity the Fig. 5 explorer plots
//! against ε and against the policy-graph density knob.

use crate::bayes::{estimate, BayesEstimator};
use crate::likelihood::LikelihoodModel;
use crate::prior::Prior;
use panda_core::{LocationPolicyGraph, Mechanism, PglpError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Aggregate result of an adversary-error run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdversaryReport {
    /// Mechanism name.
    pub mechanism: String,
    /// Policy name.
    pub policy: String,
    /// Privacy parameter.
    pub eps: f64,
    /// Number of attack trials.
    pub trials: usize,
    /// Mean Euclidean distance between the attacker's answer and the truth
    /// (in grid length units). **Higher = more private.**
    pub mean_error: f64,
    /// Fraction of trials where the attacker named the exact cell.
    pub hit_rate: f64,
    /// Mean Euclidean distance between the *release* and the truth — the
    /// utility loss, for plotting the privacy-utility trade-off.
    pub mean_utility_error: f64,
}

/// Runs the Shokri-style inference attack.
///
/// `mc_samples` is forwarded to [`LikelihoodModel::build`] for mechanisms
/// without closed-form distributions.
#[allow(clippy::too_many_arguments)]
pub fn expected_inference_error<R: Rng>(
    mech: &dyn Mechanism,
    policy: &LocationPolicyGraph,
    eps: f64,
    prior: &Prior,
    estimator: BayesEstimator,
    trials: usize,
    mc_samples: usize,
    rng: &mut R,
) -> Result<AdversaryReport, PglpError> {
    let grid = policy.grid().clone();
    let like = LikelihoodModel::build(mech, policy, eps, mc_samples)?;
    let mut total_err = 0.0;
    let mut total_util = 0.0;
    let mut hits = 0usize;
    for _ in 0..trials {
        let truth = prior.sample(rng);
        let z = mech.perturb(policy, eps, truth, rng)?;
        let answer =
            estimate(&grid, prior, &like, z, estimator).expect("smoothed posterior never dies");
        total_err += grid.distance(answer, truth);
        total_util += grid.distance(z, truth);
        if answer == truth {
            hits += 1;
        }
    }
    Ok(AdversaryReport {
        mechanism: mech.name().to_string(),
        policy: policy.name().to_string(),
        eps,
        trials,
        mean_error: total_err / trials as f64,
        hit_rate: hits as f64 / trials as f64,
        mean_utility_error: total_util / trials as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::{GraphExponential, IdentityMechanism, LocationPolicyGraph};
    use panda_geo::GridMap;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> GridMap {
        GridMap::new(5, 5, 100.0)
    }

    #[test]
    fn identity_mechanism_has_zero_privacy() {
        let g = grid();
        let policy = LocationPolicyGraph::isolated(g.clone());
        let prior = Prior::uniform(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        let report = expected_inference_error(
            &IdentityMechanism,
            &policy,
            1.0,
            &prior,
            BayesEstimator::Map,
            200,
            0,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.mean_error, 0.0);
        assert_eq!(report.hit_rate, 1.0);
        assert_eq!(report.mean_utility_error, 0.0);
    }

    #[test]
    fn privacy_decreases_with_eps() {
        let g = grid();
        let policy = LocationPolicyGraph::complete(g.clone());
        let prior = Prior::uniform(&g);
        let run = |eps: f64, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            expected_inference_error(
                &GraphExponential,
                &policy,
                eps,
                &prior,
                BayesEstimator::MinExpectedDistance,
                400,
                0,
                &mut rng,
            )
            .unwrap()
        };
        let low = run(0.1, 2);
        let high = run(8.0, 3);
        assert!(
            low.mean_error > high.mean_error,
            "adversary error must fall with eps: {} !> {}",
            low.mean_error,
            high.mean_error
        );
        assert!(low.hit_rate < high.hit_rate);
    }

    #[test]
    fn utility_error_also_reported() {
        let g = grid();
        let policy = LocationPolicyGraph::complete(g.clone());
        let prior = Prior::uniform(&g);
        let mut rng = SmallRng::seed_from_u64(4);
        let report = expected_inference_error(
            &GraphExponential,
            &policy,
            0.5,
            &prior,
            BayesEstimator::Map,
            300,
            0,
            &mut rng,
        )
        .unwrap();
        assert!(report.mean_utility_error > 0.0);
        assert!(report.trials == 300);
    }

    #[test]
    fn skewed_prior_helps_the_attacker() {
        let g = grid();
        let policy = LocationPolicyGraph::complete(g.clone());
        // Victim is almost always in cell 12 and the attacker knows it.
        let mut weights = vec![0.01; 25];
        weights[12] = 10.0;
        let skewed = Prior::from_weights(weights);
        let uniform = Prior::uniform(&g);
        let run = |prior: &Prior, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            expected_inference_error(
                &GraphExponential,
                &policy,
                0.2,
                prior,
                BayesEstimator::MinExpectedDistance,
                400,
                0,
                &mut rng,
            )
            .unwrap()
        };
        let informed = run(&skewed, 5);
        let blind = run(&uniform, 6);
        assert!(
            informed.mean_error < blind.mean_error,
            "informed attacker must do better: {} !< {}",
            informed.mean_error,
            blind.mean_error
        );
    }
}
