//! The attacker's mechanism model: `P(z | s)` for every cell pair.
//!
//! PGLP's threat model makes the policy graph and mechanism public (§2.1:
//! "by making the policy graph public, the system has a high level of
//! transparency"), so a strong adversary knows `P(z | s)` exactly. For
//! mechanisms with closed-form distributions the likelihood matrix is exact;
//! for sampling-only mechanisms it is estimated by Monte Carlo with
//! add-one smoothing (the attacker's own approximation).

use panda_core::{LocationPolicyGraph, Mechanism, PglpError};
use panda_geo::CellId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Dense likelihood matrix: `like[s][z] = P(A(s) = z)`.
#[derive(Debug, Clone)]
pub struct LikelihoodModel {
    n: usize,
    like: Vec<Vec<f64>>,
    exact: bool,
}

impl LikelihoodModel {
    /// Builds the model from closed-form distributions; falls back to Monte
    /// Carlo (with `mc_samples` per input, seeded deterministically) for
    /// mechanisms without one.
    pub fn build(
        mech: &dyn Mechanism,
        policy: &LocationPolicyGraph,
        eps: f64,
        mc_samples: usize,
    ) -> Result<Self, PglpError> {
        let n = policy.n_locations() as usize;
        let mut like = vec![vec![0.0f64; n]; n];
        let mut exact = true;
        for (s, like_row) in like.iter_mut().enumerate() {
            let cell = CellId(s as u32);
            if let Some(dist) = mech.output_distribution(policy, eps, cell) {
                for (z, p) in dist {
                    like_row[z.index()] = p;
                }
            } else {
                exact = false;
                let mut rng =
                    StdRng::seed_from_u64(0xA77AC4 ^ (s as u64).wrapping_mul(0x9E37_79B9));
                let mut counts = vec![0usize; n];
                for _ in 0..mc_samples {
                    let z = mech.perturb(policy, eps, cell, &mut rng)?;
                    counts[z.index()] += 1;
                }
                // Add-one smoothing over the component support: the attacker
                // knows outputs stay in the component.
                let support = policy.component_cells(cell);
                let denom = mc_samples as f64 + support.len() as f64;
                for c in support {
                    like_row[c.index()] = (counts[c.index()] as f64 + 1.0) / denom;
                }
            }
        }
        Ok(LikelihoodModel { n, like, exact })
    }

    /// `P(z | s)`.
    #[inline]
    pub fn prob(&self, s: CellId, z: CellId) -> f64 {
        self.like[s.index()][z.index()]
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.n
    }

    /// `true` when every row came from a closed-form distribution.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The full row `P(· | s)`.
    pub fn row(&self, s: CellId) -> &[f64] {
        &self.like[s.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_core::{GraphCalibratedLaplace, GraphExponential, LocationPolicyGraph};
    use panda_geo::GridMap;

    fn policy() -> LocationPolicyGraph {
        LocationPolicyGraph::partition(GridMap::new(4, 4, 100.0), 2, 2)
    }

    #[test]
    fn exact_rows_normalise() {
        let p = policy();
        let m = LikelihoodModel::build(&GraphExponential, &p, 1.0, 0).unwrap();
        assert!(m.is_exact());
        for s in 0..16 {
            let total: f64 = m.row(CellId(s)).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "row {s} sums to {total}");
        }
    }

    #[test]
    fn exact_rows_supported_on_component() {
        let p = policy();
        let m = LikelihoodModel::build(&GraphExponential, &p, 1.0, 0).unwrap();
        for s in p.grid().cells() {
            for z in p.grid().cells() {
                let q = m.prob(s, z);
                if p.same_component(s, z) {
                    assert!(q > 0.0);
                } else {
                    assert_eq!(q, 0.0);
                }
            }
        }
    }

    #[test]
    fn monte_carlo_rows_normalise_and_cover_support() {
        let p = policy();
        let m = LikelihoodModel::build(&GraphCalibratedLaplace, &p, 1.0, 20_000).unwrap();
        assert!(!m.is_exact());
        for s in 0..16u32 {
            let total: f64 = m.row(CellId(s)).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "row {s} sums to {total}");
            // Smoothing guarantees positive mass on the whole component.
            for z in p.component_cells(CellId(s)) {
                assert!(m.prob(CellId(s), z) > 0.0);
            }
        }
    }

    #[test]
    fn monte_carlo_close_to_exact_for_gem() {
        // Force the MC path by wrapping GEM in a shim with no closed form.
        struct Shim;
        impl Mechanism for Shim {
            fn name(&self) -> &'static str {
                "shim"
            }
            fn perturb(
                &self,
                policy: &LocationPolicyGraph,
                eps: f64,
                s: CellId,
                rng: &mut dyn rand::RngCore,
            ) -> Result<CellId, PglpError> {
                GraphExponential.perturb(policy, eps, s, rng)
            }
        }
        let p = policy();
        let exact = LikelihoodModel::build(&GraphExponential, &p, 1.0, 0).unwrap();
        let mc = LikelihoodModel::build(&Shim, &p, 1.0, 50_000).unwrap();
        for s in p.grid().cells() {
            for z in p.component_cells(s) {
                let (a, b) = (exact.prob(s, z), mc.prob(s, z));
                assert!((a - b).abs() < 0.02, "P({z}|{s}): exact {a} vs mc {b}");
            }
        }
    }
}
