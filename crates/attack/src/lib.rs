//! # panda-attack
//!
//! Adversary substrate: the *empirical privacy* metric of the demo's third
//! evaluation axis (§3.2), following Shokri et al., "Quantifying Location
//! Privacy" (S&P 2011, paper reference 15).
//!
//! Empirical privacy is measured as the **expected inference error of an
//! optimal Bayesian adversary**: the attacker knows the released (perturbed)
//! location, the mechanism, the policy graph and a prior over locations; it
//! computes the posterior over true locations and outputs the estimate
//! minimising expected distance. Privacy = the expected distance between
//! the estimate and the truth (larger = more private).
//!
//! * [`prior`] — uniform / empirical / personalised priors.
//! * [`likelihood`] — the attacker's mechanism model `P(z | s)`, exact when
//!   the mechanism exposes closed-form distributions, Monte-Carlo otherwise.
//! * [`bayes`] — posterior computation and the two standard estimators
//!   (MAP and minimum-expected-distance).
//! * [`metrics`] — the adversary-error experiment loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bayes;
pub mod likelihood;
pub mod metrics;
pub mod prior;
pub mod remap;
pub mod tracking;

pub use bayes::{posterior, BayesEstimator};
pub use likelihood::LikelihoodModel;
pub use metrics::{expected_inference_error, AdversaryReport};
pub use prior::Prior;
pub use remap::RemappedMechanism;
pub use tracking::{Tracker, TrackingReport};
