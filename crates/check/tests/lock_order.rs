//! The runtime lock-order checker end to end: ascending acquisition is
//! silent, a constructed inversion panics naming both acquisition sites,
//! the cycle detector refuses a closing edge, and in unchecked release
//! builds the wrappers are layout-identical to the plain locks.
//!
//! All ranks here use dedicated high order values (>= 60000) so the tests
//! never pollute the production portion of the shared order graph.

#![forbid(unsafe_code)]

use panda_check::ordered::{OrderedMutex, OrderedRwLock, Rank};

/// Runs `f` on a fresh thread (its own held-lock stack) and returns the
/// panic message, if it panicked.
fn panic_message(f: impl FnOnce() + Send + 'static) -> Option<String> {
    let err = std::thread::Builder::new()
        .name("lock-order-probe".into())
        .spawn(f)
        .expect("spawn probe thread")
        .join()
        .err()?;
    Some(match err.downcast::<String>() {
        Ok(s) => *s,
        Err(err) => err
            .downcast::<&'static str>()
            .map(|s| s.to_string())
            .unwrap_or_else(|_| "<non-string panic payload>".into()),
    })
}

#[test]
fn ascending_acquisition_is_silent() {
    let msg = panic_message(|| {
        let outer = OrderedMutex::new(Rank::new(60000, "test.asc_outer"), 1u32);
        let inner = OrderedRwLock::new(Rank::new(60010, "test.asc_inner"), 2u32);
        let a = outer.lock();
        let b = inner.read();
        assert_eq!(*a + *b, 3);
    });
    assert_eq!(msg, None);
}

#[cfg(any(debug_assertions, panda_lockcheck))]
mod checking_on {
    use super::*;

    #[test]
    fn inversion_panics_naming_both_sites() {
        let msg = panic_message(|| {
            let low = OrderedMutex::new(Rank::new(60100, "test.inv_low"), ());
            let high = OrderedMutex::new(Rank::new(60110, "test.inv_high"), ());
            let _h = high.lock();
            let _l = low.lock(); // out of order: must panic, not deadlock
        })
        .expect("inversion must panic");
        assert!(msg.contains("lock-order inversion"), "{msg}");
        // Both lock names and both acquisition sites appear.
        assert!(msg.contains("test.inv_low"), "{msg}");
        assert!(msg.contains("test.inv_high"), "{msg}");
        assert_eq!(
            msg.matches("tests/lock_order.rs").count(),
            2,
            "both acquisition sites should be named: {msg}"
        );
    }

    #[test]
    fn equal_rank_nesting_panics() {
        let msg = panic_message(|| {
            let a = OrderedMutex::new(Rank::new(60200, "test.eq_a"), ());
            let b = OrderedMutex::new(Rank::new(60200, "test.eq_b"), ());
            let _a = a.lock();
            let _b = b.lock(); // same rank: indistinguishable from inversion
        })
        .expect("equal-rank nesting must panic");
        assert!(msg.contains("lock-order inversion"), "{msg}");
    }

    #[test]
    fn release_order_is_tracked_by_id_not_lifo() {
        let msg = panic_message(|| {
            let a = OrderedMutex::new(Rank::new(60300, "test.id_a"), ());
            let b = OrderedMutex::new(Rank::new(60310, "test.id_b"), ());
            let ga = a.lock();
            let gb = b.lock();
            drop(ga); // release the *outer* guard first
            drop(gb);
            let _again = a.lock(); // stack must be empty now
        });
        assert_eq!(msg, None);
    }

    #[test]
    fn try_lock_skips_the_inversion_check() {
        let msg = panic_message(|| {
            let low = OrderedMutex::new(Rank::new(60400, "test.try_low"), ());
            let high = OrderedMutex::new(Rank::new(60410, "test.try_high"), ());
            let _h = high.lock();
            // A failed try cannot deadlock, so a successful one is allowed
            // out of order.
            let _l = low.try_lock().expect("uncontended try_lock");
        });
        assert_eq!(msg, None);
    }

    #[test]
    fn witnessed_edges_record_nesting() {
        let msg = panic_message(|| {
            let outer = OrderedMutex::new(Rank::new(60500, "test.edge_outer"), ());
            let inner = OrderedMutex::new(Rank::new(60510, "test.edge_inner"), ());
            let _o = outer.lock();
            let _i = inner.lock();
        });
        assert_eq!(msg, None);
        assert!(
            panda_check::ordered::witnessed_edges()
                .contains(&("test.edge_outer", "test.edge_inner")),
            "the order graph should witness the nesting"
        );
    }

    #[test]
    fn cycle_detector_refuses_the_closing_edge() {
        use panda_check::ordered::record_edge_for_test;
        let a = Rank::new(65533, "test.cycle_a");
        let b = Rank::new(65534, "test.cycle_b");
        record_edge_for_test(a, b);
        let msg = panic_message(move || record_edge_for_test(b, a))
            .expect("closing the cycle must panic");
        assert!(msg.contains("lock-order cycle"), "{msg}");
        assert!(msg.contains("test.cycle_a"), "{msg}");
        assert!(msg.contains("test.cycle_b"), "{msg}");
    }
}

// In unchecked builds (plain `cargo test --release`, no panda_lockcheck)
// the wrappers must cost nothing: same size as the raw locks, inversion
// does not panic (these are plain locks — the probe below would deadlock,
// so only layout is asserted).
#[cfg(not(any(debug_assertions, panda_lockcheck)))]
mod checking_off {
    use super::*;

    #[test]
    fn wrappers_are_layout_identical_to_plain_locks() {
        assert_eq!(
            std::mem::size_of::<OrderedMutex<u64>>(),
            std::mem::size_of::<parking_lot::Mutex<u64>>()
        );
        assert_eq!(
            std::mem::size_of::<OrderedRwLock<u64>>(),
            std::mem::size_of::<parking_lot::RwLock<u64>>()
        );
        assert_eq!(
            std::mem::size_of::<OrderedRwLock<Vec<u8>>>(),
            std::mem::size_of::<parking_lot::RwLock<Vec<u8>>>()
        );
    }

    #[test]
    fn witnessed_edges_is_empty_when_checking_is_off() {
        assert!(panda_check::ordered::witnessed_edges().is_empty());
    }
}
