//! End-to-end CLI tests over the fixture workspaces: the seeded workspace
//! fails `--deny` with exactly one finding per rule (each carrying a
//! `file:line` anchor), and the clean workspace passes.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_check(root: &Path, deny: bool) -> (bool, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_panda-check"));
    cmd.arg("--root").arg(root);
    if deny {
        cmd.arg("--deny");
    }
    let out = cmd.output().expect("run panda-check");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn seeded_workspace_fails_deny_with_one_finding_per_rule() {
    let (ok, stdout) = run_check(&fixture("ws_bad"), true);
    assert!(!ok, "--deny must exit nonzero on findings:\n{stdout}");
    for (rule, file) in [
        ("banned_api", "crates/demo/src/release/mod.rs"),
        ("unordered_iter", "crates/demo/src/index.rs"),
        ("panic_path", "crates/demo/src/wire.rs"),
        ("unsafe_block", "crates/demo/src/raw.rs"),
        ("stale_allowlist", "crates/demo/src/stale.rs"),
    ] {
        let tag = format!("[{rule}]");
        let hits: Vec<&str> = stdout.lines().filter(|l| l.contains(&tag)).collect();
        assert_eq!(hits.len(), 1, "{rule} should fire exactly once:\n{stdout}");
        assert!(
            hits[0].starts_with(&format!("{file}:")),
            "{rule} should anchor to {file}:\n{stdout}"
        );
    }
    assert!(stdout.contains("5 finding(s)"), "{stdout}");
}

#[test]
fn diagnostics_carry_file_and_line() {
    let (_, stdout) = run_check(&fixture("ws_bad"), true);
    // The unwrap in ws_bad's wire.rs sits on line 4; the diagnostic must
    // say so in `path:line: [rule]` form.
    assert!(
        stdout.contains("crates/demo/src/wire.rs:4: [panic_path]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/release/mod.rs:4: [banned_api]"),
        "{stdout}"
    );
}

#[test]
fn seeded_workspace_without_deny_still_exits_zero() {
    let (ok, stdout) = run_check(&fixture("ws_bad"), false);
    assert!(ok, "report-only mode must not fail:\n{stdout}");
}

#[test]
fn clean_workspace_passes_deny() {
    let (ok, stdout) = run_check(&fixture("ws_clean"), true);
    assert!(ok, "clean fixture must exit 0:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
    // The allowlisted unsafe block still shows up in the inventory, with
    // its justification.
    assert!(
        stdout.contains("crates/demo/src/raw.rs: 1 — all-zero bits are a valid u32"),
        "{stdout}"
    );
}

#[test]
fn missing_config_is_a_hard_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_panda-check"))
        .arg("--root")
        .arg(fixture("ws_bad"))
        .arg("--config")
        .arg(fixture("no-such-file.toml"))
        .output()
        .expect("run panda-check");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
