//! Seeded violation: panic on the hostile-byte decode path.

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
