//! Seeded violation: `unsafe` with no allowlist entry.

pub fn zeroed() -> u32 {
    unsafe { std::mem::zeroed() }
}
