//! Seeded violation: wall-clock read inside an RNG-keyed module.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
