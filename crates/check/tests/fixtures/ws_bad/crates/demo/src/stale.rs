//! Seeded violation: the allowlist still records an `unsafe` block this
//! file no longer contains.

pub fn nothing() {}
