//! Seeded violation: hash container in an ordered-iteration file.

use std::collections::HashMap;

pub fn empty() -> usize {
    0
}
