//! Clean: deterministic code, no wall clock, no ambient RNG.

pub fn stamp(epoch: u64) -> u64 {
    epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
