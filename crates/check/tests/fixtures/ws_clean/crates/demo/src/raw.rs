//! Clean: one `unsafe` block, covered by the allowlist.

pub fn zeroed() -> u32 {
    unsafe { std::mem::zeroed() }
}
