//! Clean: a hash container behind a justified suppression.

// panda-check: allow(unordered_iter): keyed lookup only, order never observed
use std::collections::HashMap as Lookup;

pub fn lookup(m: &Lookup<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
