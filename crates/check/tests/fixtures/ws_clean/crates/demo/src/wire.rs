//! Clean: typed errors on the decode path; unwraps only under `#[cfg(test)]`.

pub fn first(v: &[u8]) -> Result<u8, &'static str> {
    v.first().copied().ok_or("empty payload")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
