//! A minimal token-level lexer for Rust source.
//!
//! The lint rules only need identifiers and punctuation with accurate line
//! numbers, plus comment text (for `panda-check: allow(...)` suppressions).
//! String/char/number literals and lifetimes are consumed and dropped so the
//! rules never fire on text inside a literal. No external parser crates are
//! used, consistent with the workspace's offline vendoring policy.

/// One significant token in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number the token starts on.
    pub line: u32,
    /// What the token is.
    pub kind: TokenKind,
}

/// Token classification: everything the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `!`, `:` ...).
    Punct(char),
}

/// A `// panda-check: allow(rule): reason` suppression found in a comment.
/// It silences `rule` on the comment's own line and on the following line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// The rule name inside `allow(...)`.
    pub rule: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// All suppression comments found.
    pub suppressions: Vec<Suppression>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extract a suppression from a comment body, if present.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let idx = comment.find("panda-check: allow(")?;
    let rest = &comment[idx + "panda-check: allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    Some(Suppression { line, rule })
}

/// Lex `src` into tokens and suppressions.
pub fn lex(src: &str) -> LexOutput {
    let mut out = LexOutput::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = chars[i];

        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }

        // Line comments (including doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let mut comment = String::new();
            while i < n && chars[i] != '\n' {
                comment.push(chars[i]);
                i += 1;
            }
            if let Some(s) = parse_suppression(&comment, start_line) {
                out.suppressions.push(s);
            }
            continue;
        }

        // Block comments (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut comment = String::new();
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(chars[i]);
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            if let Some(s) = parse_suppression(&comment, start_line) {
                out.suppressions.push(s);
            }
            continue;
        }

        // Raw / byte strings and raw identifiers: r"..", r#".."#, br".."',
        // b"..", and r#ident.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < n && chars[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let is_raw_capable = c == 'r' || (c == 'b' && i + 1 < n && chars[i + 1] == 'r');
            if is_raw_capable && hashes > 0 && j < n && chars[j] == '"' {
                // Raw string: scan for `"` followed by `hashes` hashes.
                i = j + 1;
                while i < n {
                    if chars[i] == '"' {
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while k < n && chars[k] == '#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            i = k;
                            break;
                        }
                    }
                    bump_line!(chars[i]);
                    i += 1;
                }
                continue;
            }
            if is_raw_capable && hashes == 0 && j < n && chars[j] == '"' {
                // r"..." / br"..." — no escapes in raw strings.
                i = j + 1;
                while i < n && chars[i] != '"' {
                    bump_line!(chars[i]);
                    i += 1;
                }
                i += 1;
                continue;
            }
            if c == 'r' && hashes == 1 && j < n && is_ident_start(chars[j]) {
                // Raw identifier r#ident: emit without the prefix.
                let start_line = line;
                let mut ident = String::new();
                i = j;
                while i < n && is_ident_continue(chars[i]) {
                    ident.push(chars[i]);
                    i += 1;
                }
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Ident(ident),
                });
                continue;
            }
            if c == 'b' && i + 1 < n && chars[i + 1] == '"' {
                // Byte string b"...": treat like a regular string below.
                i += 1;
                // fall through to string handling by reassigning c
                // (handled by the '"' branch on the next loop turn)
                // — simplest is to handle inline:
                i += 1; // past the opening quote
                while i < n {
                    if chars[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if chars[i] == '"' {
                        i += 1;
                        break;
                    }
                    bump_line!(chars[i]);
                    i += 1;
                }
                continue;
            }
            if c == 'b' && i + 1 < n && chars[i + 1] == '\'' {
                // Byte char b'x'.
                i += 2;
                while i < n {
                    if chars[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        i += 1;
                        break;
                    }
                    bump_line!(chars[i]);
                    i += 1;
                }
                continue;
            }
            // Not a literal prefix — plain identifier starting with r/b.
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let start_line = line;
            let mut ident = String::new();
            while i < n && is_ident_continue(chars[i]) {
                ident.push(chars[i]);
                i += 1;
            }
            out.tokens.push(Token {
                line: start_line,
                kind: TokenKind::Ident(ident),
            });
            continue;
        }

        // Numbers: consume the whole literal (digits, underscores, type
        // suffixes, hex/oct/bin prefixes, float dots). Exponent signs are
        // left to be consumed as harmless punctuation.
        if c.is_ascii_digit() {
            i += 1;
            while i < n && (is_ident_continue(chars[i]) || chars[i] == '.') {
                // A second dot means a range expression like `0..n`.
                if chars[i] == '.' && i + 1 < n && chars[i + 1] == '.' {
                    break;
                }
                i += 1;
            }
            continue;
        }

        // Regular strings.
        if c == '"' {
            i += 1;
            while i < n {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                bump_line!(chars[i]);
                i += 1;
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // A lifetime is `'` + ident not followed by a closing `'`.
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if j < n && chars[j] == '\'' && j == i + 2 {
                    // 'x' — single-char literal.
                    i = j + 1;
                } else {
                    // Lifetime: consume the quote and the ident.
                    i = j;
                }
                continue;
            }
            // Escaped or symbolic char literal: '\n', '\'', '\u{...}', ' '.
            i += 1;
            while i < n {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '\'' {
                    i += 1;
                    break;
                }
                bump_line!(chars[i]);
                i += 1;
            }
            continue;
        }

        // Everything else: single punctuation character.
        out.tokens.push(Token {
            line,
            kind: TokenKind::Punct(c),
        });
        i += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r####"
// HashMap in a comment
/* HashMap in /* a nested */ block */
let s = "HashMap::new()";
let r = r#"HashMap"#;
let b = b"HashMap";
let actual = 1;
"####;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"actual".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let ids = idents(src);
        // 'a must not swallow `(x:` — x should still be a token.
        assert!(ids.contains(&"x".to_string()));
        assert!(!ids.contains(&"a".to_string()) || ids.iter().filter(|s| *s == "a").count() <= 2);
    }

    #[test]
    fn suppressions_parse() {
        let src = "let x = m.get(&k); // panda-check: allow(unordered_iter): sums are order-free\n";
        let out = lex(src);
        assert_eq!(out.suppressions.len(), 1);
        assert_eq!(out.suppressions[0].rule, "unordered_iter");
        assert_eq!(out.suppressions[0].line, 1);
    }

    #[test]
    fn raw_idents_lose_prefix() {
        let ids = idents("let r#type = 3;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn line_numbers_track_strings_and_comments() {
        let src = "line1\n\"str\nstr\"\n/* c\nc */\nmarker";
        let out = lex(src);
        let marker = out
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("marker".into()))
            .unwrap();
        assert_eq!(marker.line, 6);
    }
}
