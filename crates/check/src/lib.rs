//! panda-check: workspace analysis for the PANDA reproduction.
//!
//! Two cooperating analyses guard the system's headline contract (released
//! DBs byte-identical across thread counts, flush timings, transports, and
//! cluster sizes):
//!
//! 1. **Static lint** ([`rules`], driven by the `panda-check` binary): a
//!    dependency-free token-level scanner over every `src/` and
//!    `crates/*/src` file enforcing the deny rules configured in
//!    `panda-check.toml` — banned wall-clock/ambient-RNG APIs in RNG-keyed
//!    modules, unordered-container discipline in deterministic files,
//!    panic-free decoding paths, and an `unsafe` inventory with a justified
//!    allowlist. See [`rules`] for the catalog.
//! 2. **Runtime lock-order checker** ([`ordered`]): rank-annotated
//!    [`OrderedMutex`](ordered::OrderedMutex) /
//!    [`OrderedRwLock`](ordered::OrderedRwLock) wrappers used at every
//!    contended lock in the workspace, which panic with both acquisition
//!    sites on any out-of-order acquisition in debug/`--cfg panda_lockcheck`
//!    builds and compile to plain `parking_lot` locks in release.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod lexer;
pub mod ordered;
pub mod report;
pub mod rules;

pub use config::Config;
pub use ordered::{OrderedMutex, OrderedRwLock, Rank};
pub use report::Finding;
pub use rules::Checker;
