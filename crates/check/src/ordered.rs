//! Rank-annotated lock wrappers with a runtime lock-order checker.
//!
//! Every contended lock in the workspace is assigned a [`Rank`] from the
//! global table in [`rank`]. Threads must acquire locks in strictly
//! ascending rank order; the checker maintains a per-thread held-lock stack
//! and a global order graph, and panics — naming both acquisition sites —
//! the moment any thread acquires out of order. Because the check runs
//! *before* the inner lock is taken, a would-be deadlock becomes a
//! deterministic panic on first exercise instead of a stuck CI job.
//!
//! The checker is active under `cfg(debug_assertions)` (so plain
//! `cargo test` exercises it) and under `--cfg panda_lockcheck` (the CI
//! contention job sets `RUSTFLAGS="--cfg panda_lockcheck"` to keep it on in
//! release tests). In ordinary release builds the rank field, the held
//! stack, and the guard token all compile away: `OrderedMutex<T>` is
//! layout-identical to `parking_lot::Mutex<T>` (checked by a `const`
//! assertion below).
//!
//! Adding a lock: pick an order value that reflects the outermost-first
//! acquisition position (gaps of 10–100 between neighbours leave room),
//! add a constant to [`rank`], and construct the lock with it. If two locks
//! are ever held together, the outer one must have the *lower* order.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A position in the global lock order. Lower = acquired first (outermost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rank {
    order: u16,
    name: &'static str,
}

impl Rank {
    /// Define a rank. `order` is the position in the global acquisition
    /// order; `name` appears in diagnostics.
    pub const fn new(order: u16, name: &'static str) -> Self {
        Rank { order, name }
    }

    /// The numeric order of this rank.
    pub const fn order(self) -> u16 {
        self.order
    }

    /// The diagnostic name of this rank.
    pub const fn name(self) -> &'static str {
        self.name
    }
}

/// The workspace lock-rank table. One constant per lock (or per family of
/// never-held-together locks, like the server stripes). Listed outermost
/// first; a thread may only acquire downward through this list.
pub mod rank {
    use super::Rank;

    /// `ShardRouter`'s current-policy record; held across backend broadcast.
    pub const ROUTER_POLICY: Rank = Rank::new(100, "router.current_policy");
    /// A remote shard backend's `GatewayClient` link.
    pub const ROUTER_BACKEND: Rank = Rank::new(200, "router.backend_link");
    /// The gateway listener's connection-handler registry.
    pub const LISTENER_REGISTRY: Rank = Rank::new(300, "listener.handler_registry");
    /// The gateway's per-connection counter registry.
    pub const GATEWAY_CONNECTIONS: Rank = Rank::new(310, "gateway.connections");
    /// The router-side re-send mailbox.
    pub const MAILBOX: Rank = Rank::new(400, "gateway.mailbox");
    /// One `Server` shard stripe's report store (stripes are never nested).
    pub const SERVER_STRIPE: Rank = Rank::new(500, "server.stripe");
    /// The `Server` health-state record.
    pub const SERVER_HEALTH: Rank = Rank::new(510, "server.health");
    /// `PolicyIndex` distribution (sampling-table) cache.
    pub const INDEX_DISTRIBUTIONS: Rank = Rank::new(600, "index.distributions");
    /// `PolicyIndex` distance-row cache.
    pub const INDEX_ROWS: Rank = Rank::new(610, "index.rows");
    /// `PolicyIndex` calibration memo.
    pub const INDEX_CALIBRATIONS: Rank = Rank::new(620, "index.calibrations");
    /// `PolicyIndex` prepared-hull memos (slots are never nested).
    pub const INDEX_PIM_HULLS: Rank = Rank::new(630, "index.pim_hulls");
    /// The parallel releaser's cross-worker failure collector.
    pub const RELEASE_FAILURES: Rank = Rank::new(700, "release.failures");
}

/// The lock-order bookkeeping, compiled in only when checking is on.
#[cfg(any(debug_assertions, panda_lockcheck))]
mod lockcheck {
    use super::Rank;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    struct Held {
        order: u16,
        name: &'static str,
        site: &'static Location<'static>,
        id: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// One witnessed `from → to` acquisition order, with the sites that
    /// first exhibited it.
    #[derive(Clone, Copy)]
    pub(super) struct Edge {
        pub(super) from_name: &'static str,
        pub(super) to_name: &'static str,
        pub(super) from_site: &'static Location<'static>,
        pub(super) to_site: &'static Location<'static>,
    }

    fn graph() -> &'static Mutex<HashMap<(u16, u16), Edge>> {
        static GRAPH: OnceLock<Mutex<HashMap<(u16, u16), Edge>>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Would adding `from → to` close a cycle in the witnessed-order graph?
    fn creates_cycle(edges: &HashMap<(u16, u16), Edge>, from: u16, to: u16) -> bool {
        if from == to {
            return true;
        }
        // DFS from `to` looking for `from` along existing edges.
        let mut stack = vec![to];
        let mut seen = vec![to];
        while let Some(node) = stack.pop() {
            for &(a, b) in edges.keys() {
                if a == node && !seen.contains(&b) {
                    if b == from {
                        return true;
                    }
                    seen.push(b);
                    stack.push(b);
                }
            }
        }
        false
    }

    /// Insert an edge, panicking if it closes a cycle. Exposed (hidden) so
    /// tests can drive the cycle detector directly with dedicated ranks.
    pub(super) fn insert_edge(
        from: Rank,
        from_site: &'static Location<'static>,
        to: Rank,
        to_site: &'static Location<'static>,
    ) {
        let mut edges = graph().lock().unwrap_or_else(|e| e.into_inner());
        if edges.contains_key(&(from.order(), to.order())) {
            return;
        }
        if creates_cycle(&edges, from.order(), to.order()) {
            panic!(
                "lock-order cycle: edge `{}` (rank {}) -> `{}` (rank {}) at {} closes a cycle \
                 in the witnessed acquisition graph",
                from.name(),
                from.order(),
                to.name(),
                to.order(),
                to_site,
            );
        }
        edges.insert(
            (from.order(), to.order()),
            Edge {
                from_name: from.name(),
                to_name: to.name(),
                from_site,
                to_site,
            },
        );
    }

    /// Look up a previously witnessed `from → to` edge.
    fn witnessed(from: u16, to: u16) -> Option<Edge> {
        graph()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(from, to))
            .copied()
    }

    /// Record a blocking acquisition. Panics on rank inversion. Returns the
    /// held-entry id the guard must pass back to [`release`].
    pub(super) fn acquire(rank: Rank, site: &'static Location<'static>) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for h in held.iter() {
                if h.order >= rank.order() {
                    let hint = witnessed(rank.order(), h.order)
                        .map(|e| {
                            format!(
                                "\n  reverse order `{}` -> `{}` was previously witnessed \
                                 ({} then {})",
                                e.from_name, e.to_name, e.from_site, e.to_site
                            )
                        })
                        .unwrap_or_default();
                    panic!(
                        "lock-order inversion: acquiring `{}` (rank {}) at {} \
                         while holding `{}` (rank {}) acquired at {}{}",
                        rank.name(),
                        rank.order(),
                        site,
                        h.name,
                        h.order,
                        h.site,
                        hint,
                    );
                }
            }
            // Witness the (outermost-held → new) edges before pushing.
            for h in held.iter() {
                insert_edge(Rank::new(h.order, h.name), h.site, rank, site);
            }
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            held.push(Held {
                order: rank.order(),
                name: rank.name(),
                site,
                id,
            });
            id
        })
    }

    /// Record a successful `try_lock`. Non-blocking acquisitions cannot
    /// deadlock, so no inversion check — but the entry still participates
    /// as a held lock for later blocking acquisitions.
    pub(super) fn acquire_try(rank: Rank, site: &'static Location<'static>) -> u64 {
        HELD.with(|held| {
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            held.borrow_mut().push(Held {
                order: rank.order(),
                name: rank.name(),
                site,
                id,
            });
            id
        })
    }

    /// Drop a held entry by id (guards are not necessarily released LIFO).
    pub(super) fn release(id: u64) {
        HELD.with(|held| held.borrow_mut().retain(|h| h.id != id));
    }

    /// Snapshot of the witnessed order graph as `(from, to)` name pairs.
    pub(super) fn witnessed_edges() -> Vec<(&'static str, &'static str)> {
        let edges = graph().lock().unwrap_or_else(|e| e.into_inner());
        let mut v: Vec<_> = edges.values().map(|e| (e.from_name, e.to_name)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A guard token that pops the held-stack entry when dropped.
#[cfg(any(debug_assertions, panda_lockcheck))]
#[derive(Debug)]
struct HeldToken(u64);

#[cfg(any(debug_assertions, panda_lockcheck))]
impl Drop for HeldToken {
    fn drop(&mut self) {
        lockcheck::release(self.0);
    }
}

/// Snapshot of the witnessed lock-order graph (checking builds only), as
/// sorted `(from, to)` rank-name pairs. Empty when checking is off.
#[doc(hidden)]
pub fn witnessed_edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(any(debug_assertions, panda_lockcheck))]
    {
        lockcheck::witnessed_edges()
    }
    #[cfg(not(any(debug_assertions, panda_lockcheck)))]
    {
        Vec::new()
    }
}

/// Directly insert a `from → to` edge into the order graph, panicking if it
/// closes a cycle. Test hook for the cycle detector; use dedicated ranks so
/// tests do not pollute the production portion of the graph.
#[doc(hidden)]
#[cfg(any(debug_assertions, panda_lockcheck))]
#[track_caller]
pub fn record_edge_for_test(from: Rank, to: Rank) {
    let site = std::panic::Location::caller();
    lockcheck::insert_edge(from, site, to, site);
}

/// A mutex that participates in the global lock order.
pub struct OrderedMutex<T: ?Sized> {
    #[cfg(any(debug_assertions, panda_lockcheck))]
    rank: Rank,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Create a mutex at `rank`.
    pub fn new(rank: Rank, value: T) -> Self {
        #[cfg(not(any(debug_assertions, panda_lockcheck)))]
        let _ = rank;
        OrderedMutex {
            #[cfg(any(debug_assertions, panda_lockcheck))]
            rank,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquire the lock, blocking. Panics (under checking) if this thread
    /// already holds a lock of equal or higher rank.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(any(debug_assertions, panda_lockcheck))]
        let token = HeldToken(lockcheck::acquire(
            self.rank,
            std::panic::Location::caller(),
        ));
        OrderedMutexGuard {
            #[cfg(any(debug_assertions, panda_lockcheck))]
            _token: token,
            guard: self.inner.lock(),
        }
    }

    /// Try to acquire the lock without blocking. No inversion check — a
    /// failed try cannot deadlock — but a successful acquisition still
    /// counts as held for later blocking acquisitions on this thread.
    #[track_caller]
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        #[cfg(any(debug_assertions, panda_lockcheck))]
        let token = HeldToken(lockcheck::acquire_try(
            self.rank,
            std::panic::Location::caller(),
        ));
        Some(OrderedMutexGuard {
            #[cfg(any(debug_assertions, panda_lockcheck))]
            _token: token,
            guard,
        })
    }

    /// Access the inner value through exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex").finish_non_exhaustive()
    }
}

/// Guard for [`OrderedMutex::lock`].
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    // Declared before `guard`: the held-stack entry is popped first, then
    // the inner lock released. Both happen on this thread, so order between
    // them is unobservable to other threads' checks.
    #[cfg(any(debug_assertions, panda_lockcheck))]
    _token: HeldToken,
    guard: parking_lot::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock that participates in the global lock order.
pub struct OrderedRwLock<T: ?Sized> {
    #[cfg(any(debug_assertions, panda_lockcheck))]
    rank: Rank,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Create a lock at `rank`.
    pub fn new(rank: Rank, value: T) -> Self {
        #[cfg(not(any(debug_assertions, panda_lockcheck)))]
        let _ = rank;
        OrderedRwLock {
            #[cfg(any(debug_assertions, panda_lockcheck))]
            rank,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Acquire a shared read guard. Rank rules are identical to `lock()` —
    /// reads and writes occupy the same position in the order.
    #[track_caller]
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        #[cfg(any(debug_assertions, panda_lockcheck))]
        let token = HeldToken(lockcheck::acquire(
            self.rank,
            std::panic::Location::caller(),
        ));
        OrderedRwLockReadGuard {
            #[cfg(any(debug_assertions, panda_lockcheck))]
            _token: token,
            guard: self.inner.read(),
        }
    }

    /// Acquire an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        #[cfg(any(debug_assertions, panda_lockcheck))]
        let token = HeldToken(lockcheck::acquire(
            self.rank,
            std::panic::Location::caller(),
        ));
        OrderedRwLockWriteGuard {
            #[cfg(any(debug_assertions, panda_lockcheck))]
            _token: token,
            guard: self.inner.write(),
        }
    }

    /// Access the inner value through exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock").finish_non_exhaustive()
    }
}

/// Guard for [`OrderedRwLock::read`].
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    #[cfg(any(debug_assertions, panda_lockcheck))]
    _token: HeldToken,
    guard: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Guard for [`OrderedRwLock::write`].
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(any(debug_assertions, panda_lockcheck))]
    _token: HeldToken,
    guard: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for OrderedRwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// In ordinary release builds every checking field compiles away and the
// wrappers are layout-identical to the raw parking_lot locks. Evaluated by
// tier-1's `cargo build --release`.
#[cfg(not(any(debug_assertions, panda_lockcheck)))]
const _: () = {
    assert!(
        std::mem::size_of::<OrderedMutex<u64>>() == std::mem::size_of::<parking_lot::Mutex<u64>>()
    );
    assert!(
        std::mem::size_of::<OrderedRwLock<u64>>()
            == std::mem::size_of::<parking_lot::RwLock<u64>>()
    );
};
