//! Lint findings and their rendering.

use std::fmt;

/// One lint finding, pointing at a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule name (the one suppression comments reference).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Sort findings for stable output: by path, then line, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}
