//! The `panda-check` CLI: lint the workspace's first-party sources.
//!
//! Usage:
//!
//! ```text
//! panda-check [--deny] [--root <dir>] [--config <file>]
//! ```
//!
//! Walks `<root>/src` and `<root>/crates/*/src` (sorted, so output is
//! stable), lints every `.rs` file against `<root>/panda-check.toml`, prints
//! one `path:line: [rule] message` diagnostic per finding plus an `unsafe`
//! inventory summary, and — with `--deny` — exits nonzero if there is any
//! finding. CI runs `cargo run -p panda-check -- --deny` as a hard gate.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use panda_check::report::sort_findings;
use panda_check::{config, Checker, Finding};

/// Parsed command line.
struct Args {
    deny: bool,
    root: PathBuf,
    config: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        root: PathBuf::from("."),
        config: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--help" | "-h" => {
                println!("usage: panda-check [--deny] [--root <dir>] [--config <file>]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Collect every `.rs` file under `dir`, recursively, in sorted order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The scan roots: `<root>/src` plus every `<root>/crates/*/src`.
fn scan_roots(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut roots = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        roots.push(src);
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    Ok(roots)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("panda-check.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let cfg = config::parse(&text).map_err(|e| e.to_string())?;
    let checker = Checker::new(cfg);

    let mut findings: Vec<Finding> = Vec::new();
    let mut files = 0usize;
    let mut unsafe_files: Vec<(String, usize)> = Vec::new();

    let mut rs_files = Vec::new();
    for root in
        scan_roots(&args.root).map_err(|e| format!("walking {}: {e}", args.root.display()))?
    {
        collect_rs(&root, &mut rs_files).map_err(|e| format!("walking {}: {e}", root.display()))?;
    }

    for path in &rs_files {
        let rel = path
            .strip_prefix(&args.root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let report = checker.check_file(&rel, &src);
        files += 1;
        if report.unsafe_blocks > 0 {
            unsafe_files.push((rel.clone(), report.unsafe_blocks));
        }
        findings.extend(report.findings);
    }

    sort_findings(&mut findings);
    for f in &findings {
        println!("{f}");
    }

    println!(
        "panda-check: {files} files scanned, {} finding(s)",
        findings.len()
    );
    if unsafe_files.is_empty() {
        println!("unsafe inventory: none");
    } else {
        let total: usize = unsafe_files.iter().map(|(_, n)| n).sum();
        println!(
            "unsafe inventory: {total} block(s) in {} file(s):",
            unsafe_files.len()
        );
        for (path, n) in &unsafe_files {
            let reason = checker
                .config()
                .unsafe_allow
                .iter()
                .find(|e| e.file == *path)
                .map(|e| e.reason.as_str())
                .unwrap_or("NOT ALLOWLISTED");
            println!("  {path}: {n} — {reason}");
        }
    }

    if args.deny && !findings.is_empty() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("panda-check: {msg}");
            ExitCode::FAILURE
        }
    }
}
