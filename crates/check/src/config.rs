//! `panda-check.toml` configuration.
//!
//! The build environment has no `toml` crate, so this module includes a
//! minimal hand-rolled parser covering exactly the subset the config uses:
//! `[section]` tables, `[[array-of-table]]` entries, string / integer /
//! string-array values (arrays may span multiple lines), and `#` comments.

use std::fmt;

/// One entry in the `unsafe` allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeAllow {
    /// Workspace-relative path of the file containing the blocks.
    pub file: String,
    /// Number of `unsafe` occurrences permitted in that file.
    pub blocks: usize,
    /// One-line justification (required).
    pub reason: String,
}

/// Parsed `panda-check.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Module prefixes (workspace-relative) in which the banned APIs are
    /// denied — the RNG-keyed code.
    pub determinism_modules: Vec<String>,
    /// Banned API paths, e.g. `SystemTime::now` or a bare `thread_rng`.
    pub banned: Vec<String>,
    /// Files under the deterministic-iteration discipline (in addition to
    /// any file carrying the `#![doc = "panda-check: deterministic"]` tag).
    pub iteration_files: Vec<String>,
    /// Files whose non-test code must be panic-free.
    pub panic_path_files: Vec<String>,
    /// Unsafe-block allowlist.
    pub unsafe_allow: Vec<UnsafeAllow>,
}

/// A config parse error with a line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "panda-check.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strip a trailing `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

fn parse_string(raw: &str, line: usize) -> Result<String, ConfigError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{raw}`")))?;
    Ok(inner.replace("\\\\", "\\").replace("\\\"", "\""))
}

/// Split a `[a, b, c]` body on commas that sit outside string literals.
fn split_array_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut prev_escape = false;
    for c in body.chars() {
        match c {
            '"' if !prev_escape => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    if !current.trim().is_empty() {
        items.push(current.trim().to_string());
    }
    items
}

/// Parse the config text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;

    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if line.is_empty() {
            continue;
        }

        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            section = format!("[[{}]]", name.trim());
            if name.trim() == "unsafe_allow" {
                cfg.unsafe_allow.push(UnsafeAllow {
                    file: String::new(),
                    blocks: 0,
                    reason: String::new(),
                });
            } else {
                return Err(err(lineno, format!("unknown array table `{name}`")));
            }
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            if section != "determinism" && section != "panic_path" {
                return Err(err(lineno, format!("unknown section `{section}`")));
            }
            continue;
        }

        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim();
        let mut value = value.trim().to_string();

        // Multi-line arrays: keep consuming lines until brackets balance.
        if value.starts_with('[') && !value.ends_with(']') {
            while i < lines.len() {
                let cont = strip_comment(lines[i]).trim().to_string();
                i += 1;
                value.push(' ');
                value.push_str(&cont);
                if cont.ends_with(']') {
                    break;
                }
            }
        }

        let string_array = |v: &str| -> Result<Vec<String>, ConfigError> {
            let body = v
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| err(lineno, format!("expected an array for `{key}`")))?;
            split_array_items(body)
                .iter()
                .map(|item| parse_string(item, lineno))
                .collect()
        };

        match (section.as_str(), key) {
            ("determinism", "modules") => cfg.determinism_modules = string_array(&value)?,
            ("determinism", "banned") => cfg.banned = string_array(&value)?,
            ("determinism", "iteration_files") => cfg.iteration_files = string_array(&value)?,
            ("panic_path", "files") => cfg.panic_path_files = string_array(&value)?,
            ("[[unsafe_allow]]", "file") => {
                let entry = cfg
                    .unsafe_allow
                    .last_mut()
                    .ok_or_else(|| err(lineno, "key outside [[unsafe_allow]]"))?;
                entry.file = parse_string(&value, lineno)?;
            }
            ("[[unsafe_allow]]", "blocks") => {
                let entry = cfg
                    .unsafe_allow
                    .last_mut()
                    .ok_or_else(|| err(lineno, "key outside [[unsafe_allow]]"))?;
                entry.blocks = value.trim().parse().map_err(|_| {
                    err(
                        lineno,
                        format!("`blocks` must be an integer, got `{value}`"),
                    )
                })?;
            }
            ("[[unsafe_allow]]", "reason") => {
                let entry = cfg
                    .unsafe_allow
                    .last_mut()
                    .ok_or_else(|| err(lineno, "key outside [[unsafe_allow]]"))?;
                entry.reason = parse_string(&value, lineno)?;
            }
            _ => {
                return Err(err(
                    lineno,
                    format!("unknown key `{key}` in section `{section}`"),
                ));
            }
        }
    }

    for entry in &cfg.unsafe_allow {
        if entry.file.is_empty() || entry.reason.is_empty() {
            return Err(err(
                0,
                format!(
                    "[[unsafe_allow]] entry for `{}` needs both `file` and a non-empty `reason`",
                    entry.file
                ),
            ));
        }
    }

    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_schema() {
        let text = r##"
# comment
[determinism]
modules = ["crates/core/src/release", "crates/core/src/mech"]
banned = ["SystemTime::now", "Instant::now", "thread_rng"]
iteration_files = [
    "crates/core/src/index.rs",  # inline comment
    "crates/core/src/cache.rs",
]

[panic_path]
files = ["crates/net/src/wire.rs"]

[[unsafe_allow]]
file = "crates/core/src/policy.rs"
blocks = 1
reason = "slice reinterpret"

[[unsafe_allow]]
file = "crates/core/src/release/pool.rs"
blocks = 1
reason = "job transmute"
"##;
        let cfg = parse(text).unwrap();
        assert_eq!(cfg.determinism_modules.len(), 2);
        assert_eq!(cfg.banned.len(), 3);
        assert_eq!(cfg.iteration_files.len(), 2);
        assert_eq!(cfg.panic_path_files, vec!["crates/net/src/wire.rs"]);
        assert_eq!(cfg.unsafe_allow.len(), 2);
        assert_eq!(cfg.unsafe_allow[1].blocks, 1);
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(parse("[determinism]\nnope = 3\n").is_err());
        assert!(parse("[mystery]\n").is_err());
    }

    #[test]
    fn requires_reason_on_allowlist() {
        let text = "[[unsafe_allow]]\nfile = \"a.rs\"\nblocks = 1\n";
        assert!(parse(text).is_err());
    }
}
