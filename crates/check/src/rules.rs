//! The lint rules, applied to one lexed file at a time.
//!
//! Rule catalog (names are what `// panda-check: allow(<rule>): reason`
//! suppression comments reference; a suppression silences its own line and
//! the next line):
//!
//! - `banned_api` — wall-clock / ambient-RNG calls (`SystemTime::now`,
//!   `Instant::now`, `thread_rng`, per config) inside the RNG-keyed modules
//!   listed in `[determinism] modules`. Those paths feed the byte-identity
//!   contract; time and ambient randomness have no business there.
//! - `unordered_iter` — any `HashMap` / `HashSet` mention in a file under
//!   the deterministic-iteration discipline (listed in
//!   `[determinism] iteration_files` or tagged
//!   `#![doc = "panda-check: deterministic"]`). The discipline is strict on
//!   purpose: ordered containers by default, hash containers only behind an
//!   explicit per-site suppression explaining why order cannot leak out.
//! - `panic_path` — `.unwrap(` / `.expect(` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!` / slice-indexing in the non-test code of
//!   files listed in `[panic_path] files` (the hostile-byte decoding
//!   surface, which must only ever return typed errors).
//! - `unsafe_block` / `stale_allowlist` — every `unsafe` occurrence must be
//!   covered by a `[[unsafe_allow]]` entry with a justification; an entry
//!   claiming more blocks than exist is itself an error so the allowlist
//!   cannot rot.
//!
//! Code under `#[cfg(test)] mod … { … }` is exempt from every rule.

use crate::config::Config;
use crate::lexer::{lex, LexOutput, Token, TokenKind};
use crate::report::{sort_findings, Finding};

/// The inner-doc tag that opts a file into the iteration discipline.
pub const DETERMINISTIC_TAG: &str = "#![doc = \"panda-check: deterministic\"]";

/// Per-file lint result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Number of `unsafe` occurrences in non-test code (for the inventory).
    pub unsafe_blocks: usize,
}

/// The rule engine: a parsed config plus the per-file entry point.
#[derive(Debug)]
pub struct Checker {
    cfg: Config,
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokenKind::Ident(s) => Some(s.as_str()),
        TokenKind::Punct(_) => None,
    }
}

fn punct(tok: &Token) -> Option<char> {
    match tok.kind {
        TokenKind::Punct(c) => Some(c),
        TokenKind::Ident(_) => None,
    }
}

/// Does `path` live under module `prefix` (a directory or an exact file)?
fn in_module(path: &str, prefix: &str) -> bool {
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|r| r.starts_with('/'))
}

/// Keywords that may legitimately precede `[` without it being an index
/// expression (e.g. `&mut [u8]`, `as [u8; 4]`, `for x in [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "crate", "dyn", "else", "extern", "fn", "for", "if", "impl",
    "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct",
    "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Compute the line spans of `#[cfg(test)] mod … { … }` regions.
fn test_region_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = punct(&tokens[i]) == Some('#')
            && punct(&tokens[i + 1]) == Some('[')
            && ident(&tokens[i + 2]) == Some("cfg")
            && punct(&tokens[i + 3]) == Some('(')
            && ident(&tokens[i + 4]) == Some("test")
            && punct(&tokens[i + 5]) == Some(')')
            && punct(&tokens[i + 6]) == Some(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 7;
        // Skip any further outer attributes between the cfg and the item.
        while j + 1 < tokens.len()
            && punct(&tokens[j]) == Some('#')
            && punct(&tokens[j + 1]) == Some('[')
        {
            let mut depth = 0usize;
            j += 1;
            while j < tokens.len() {
                match punct(&tokens[j]) {
                    Some('[') => depth += 1,
                    Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Optional visibility, then `mod name {`.
        if ident(&tokens[j]) == Some("pub") {
            j += 1;
            if punct(&tokens[j]) == Some('(') {
                while j < tokens.len() && punct(&tokens[j]) != Some(')') {
                    j += 1;
                }
                j += 1;
            }
        }
        if j + 2 < tokens.len()
            && ident(&tokens[j]) == Some("mod")
            && ident(&tokens[j + 1]).is_some()
            && punct(&tokens[j + 2]) == Some('{')
        {
            let mut depth = 1usize;
            let mut k = j + 3;
            let mut end_line = tokens[j + 2].line;
            while k < tokens.len() && depth > 0 {
                match punct(&tokens[k]) {
                    Some('{') => depth += 1,
                    Some('}') => {
                        depth -= 1;
                        end_line = tokens[k].line;
                    }
                    _ => {}
                }
                k += 1;
            }
            spans.push((start_line, end_line));
            i = k;
        } else {
            i = j;
        }
    }
    spans
}

fn in_spans(line: u32, spans: &[(u32, u32)]) -> bool {
    spans.iter().any(|&(lo, hi)| line >= lo && line <= hi)
}

impl Checker {
    /// Build a checker from a parsed config.
    pub fn new(cfg: Config) -> Self {
        Checker { cfg }
    }

    /// The config this checker enforces.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Lint one file. `rel_path` is workspace-relative with `/` separators.
    pub fn check_file(&self, rel_path: &str, src: &str) -> FileReport {
        let lexed = lex(src);
        let spans = test_region_spans(&lexed.tokens);
        let mut report = FileReport::default();

        let in_determinism_module = self
            .cfg
            .determinism_modules
            .iter()
            .any(|m| in_module(rel_path, m));
        let iteration_discipline = src.contains(DETERMINISTIC_TAG)
            || self.cfg.iteration_files.iter().any(|f| f == rel_path);
        let panic_discipline = self.cfg.panic_path_files.iter().any(|f| f == rel_path);

        if in_determinism_module {
            self.banned_api(rel_path, &lexed, &spans, &mut report.findings);
        }
        if iteration_discipline {
            self.unordered_iter(rel_path, &lexed, &spans, &mut report.findings);
        }
        if panic_discipline {
            self.panic_path(rel_path, &lexed, &spans, &mut report.findings);
        }
        self.unsafe_inventory(rel_path, &lexed, &spans, &mut report);

        // Apply suppressions: a comment on line L silences L and L+1.
        report.findings.retain(|f| {
            !lexed
                .suppressions
                .iter()
                .any(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line))
        });
        sort_findings(&mut report.findings);
        report
    }

    fn banned_api(
        &self,
        path: &str,
        lexed: &LexOutput,
        spans: &[(u32, u32)],
        out: &mut Vec<Finding>,
    ) {
        let tokens = &lexed.tokens;
        for banned in &self.cfg.banned {
            let segments: Vec<&str> = banned.split("::").collect();
            let mut i = 0usize;
            while i < tokens.len() {
                if in_spans(tokens[i].line, spans) || ident(&tokens[i]) != Some(segments[0]) {
                    i += 1;
                    continue;
                }
                // Match `seg0 :: seg1 :: …` from position i.
                let mut j = i + 1;
                let mut matched = true;
                for seg in &segments[1..] {
                    let sep = j + 1 < tokens.len()
                        && punct(&tokens[j]) == Some(':')
                        && punct(&tokens[j + 1]) == Some(':');
                    if sep && ident(&tokens[j + 2]) == Some(*seg) {
                        j += 3;
                    } else {
                        matched = false;
                        break;
                    }
                }
                if matched {
                    out.push(Finding {
                        path: path.to_string(),
                        line: tokens[i].line,
                        rule: "banned_api",
                        message: format!("`{banned}` in RNG-keyed module"),
                    });
                    i = j.max(i + 1);
                } else {
                    i += 1;
                }
            }
        }
    }

    fn unordered_iter(
        &self,
        path: &str,
        lexed: &LexOutput,
        spans: &[(u32, u32)],
        out: &mut Vec<Finding>,
    ) {
        let mut last_line = 0u32;
        for tok in &lexed.tokens {
            let Some(name) = ident(tok) else { continue };
            if (name == "HashMap" || name == "HashSet")
                && !in_spans(tok.line, spans)
                && tok.line != last_line
            {
                last_line = tok.line;
                out.push(Finding {
                    path: path.to_string(),
                    line: tok.line,
                    rule: "unordered_iter",
                    message: format!(
                        "`{name}` in a deterministic-iteration file; use an ordered \
                         container or suppress with a justification"
                    ),
                });
            }
        }
    }

    fn panic_path(
        &self,
        path: &str,
        lexed: &LexOutput,
        spans: &[(u32, u32)],
        out: &mut Vec<Finding>,
    ) {
        let tokens = &lexed.tokens;
        let mut push = |line: u32, message: String| {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: "panic_path",
                message,
            });
        };
        for i in 0..tokens.len() {
            if in_spans(tokens[i].line, spans) {
                continue;
            }
            match &tokens[i].kind {
                // Macro invocation: `name !`. Skip `#[macro] use` paths by
                // requiring the bang.
                TokenKind::Ident(name)
                    if matches!(
                        name.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    ) && i + 1 < tokens.len()
                        && punct(&tokens[i + 1]) == Some('!') =>
                {
                    push(tokens[i].line, format!("`{name}!` on a panic-free path"));
                }
                TokenKind::Ident(name) if name == "unwrap" || name == "expect" => {
                    let method_call = i >= 1
                        && punct(&tokens[i - 1]) == Some('.')
                        && i + 1 < tokens.len()
                        && punct(&tokens[i + 1]) == Some('(');
                    if method_call {
                        push(
                            tokens[i].line,
                            format!("`.{name}()` on a panic-free path; return a typed error"),
                        );
                    }
                }
                TokenKind::Punct('[') if i >= 1 => {
                    let indexes = match &tokens[i - 1].kind {
                        TokenKind::Ident(prev) => !NON_INDEX_KEYWORDS.contains(&prev.as_str()),
                        TokenKind::Punct(c) => *c == ')' || *c == ']',
                    };
                    if indexes {
                        push(
                            tokens[i].line,
                            "slice indexing on a panic-free path; use `.get()`".to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn unsafe_inventory(
        &self,
        path: &str,
        lexed: &LexOutput,
        spans: &[(u32, u32)],
        report: &mut FileReport,
    ) {
        let occurrences: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| ident(t) == Some("unsafe") && !in_spans(t.line, spans))
            .map(|t| t.line)
            .collect();
        report.unsafe_blocks = occurrences.len();
        let allowed = self
            .cfg
            .unsafe_allow
            .iter()
            .find(|e| e.file == path)
            .map(|e| e.blocks)
            .unwrap_or(0);
        if occurrences.len() > allowed {
            for &line in &occurrences[allowed..] {
                report.findings.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: "unsafe_block",
                    message: format!(
                        "`unsafe` not covered by the allowlist ({} occurrence(s), {} allowed); \
                         add a [[unsafe_allow]] entry with a justification",
                        occurrences.len(),
                        allowed
                    ),
                });
            }
        } else if occurrences.len() < allowed {
            report.findings.push(Finding {
                path: path.to_string(),
                line: occurrences.last().copied().unwrap_or(1),
                rule: "stale_allowlist",
                message: format!(
                    "allowlist records {} unsafe block(s) but the file has {}; \
                     update the [[unsafe_allow]] entry",
                    allowed,
                    occurrences.len()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{parse, UnsafeAllow};

    fn checker() -> Checker {
        let cfg = parse(
            r#"
[determinism]
modules = ["crates/core/src/release", "crates/surveillance/src/ingest.rs"]
banned = ["SystemTime::now", "Instant::now", "thread_rng"]
iteration_files = ["crates/core/src/index.rs"]

[panic_path]
files = ["crates/net/src/wire.rs"]
"#,
        )
        .unwrap();
        Checker::new(cfg)
    }

    #[test]
    fn banned_api_fires_in_module_and_not_outside() {
        let c = checker();
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let hits = c.check_file("crates/core/src/release/mod.rs", src);
        assert_eq!(hits.findings.len(), 1);
        assert_eq!(hits.findings[0].rule, "banned_api");
        assert_eq!(hits.findings[0].line, 1);
        let clean = c.check_file("crates/core/src/other.rs", src);
        assert!(clean.findings.is_empty());
    }

    #[test]
    fn bare_thread_rng_matches() {
        let c = checker();
        let src = "use rand::thread_rng;\n";
        let hits = c.check_file("crates/surveillance/src/ingest.rs", src);
        assert_eq!(hits.findings.len(), 1);
    }

    #[test]
    fn doc_tag_opts_into_iteration_discipline() {
        let c = checker();
        let src = "#![doc = \"panda-check: deterministic\"]\nuse std::collections::HashMap;\n";
        let hits = c.check_file("crates/geo/src/anything.rs", src);
        assert_eq!(hits.findings.len(), 1);
        assert_eq!(hits.findings[0].rule, "unordered_iter");
        assert_eq!(hits.findings[0].line, 2);
    }

    #[test]
    fn test_mod_is_exempt() {
        let c = checker();
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn f() { let m: HashMap<u32, u32> = HashMap::new(); m.get(&0).unwrap(); }
}
";
        let hits = c.check_file("crates/core/src/index.rs", src);
        assert!(hits.findings.is_empty(), "{:?}", hits.findings);
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let c = checker();
        let src = "\
// panda-check: allow(unordered_iter): lookup only, order never observed
use std::collections::HashMap;
use std::collections::HashSet;
";
        let hits = c.check_file("crates/core/src/index.rs", src);
        // Line 2 suppressed, line 3 not.
        assert_eq!(hits.findings.len(), 1);
        assert_eq!(hits.findings[0].line, 3);
    }

    #[test]
    fn panic_path_catches_all_forms() {
        let c = checker();
        let src = "\
fn f(v: &[u8]) -> u8 {
    let a = v.first().unwrap();
    let b = v.first().expect(\"b\");
    let c = v[0];
    if false { panic!(\"boom\") }
    *a + *b + c
}
";
        let hits = c.check_file("crates/net/src/wire.rs", src);
        let rules: Vec<u32> = hits.findings.iter().map(|f| f.line).collect();
        assert_eq!(rules, vec![2, 3, 4, 5], "{:?}", hits.findings);
    }

    #[test]
    fn array_types_and_attributes_are_not_indexing() {
        let c = checker();
        let src = "\
#[derive(Debug)]
struct W { buf: [u8; 4] }
fn g(x: &mut [u8], w: &W) -> [u8; 2] {
    let _ = &w.buf;
    let _ = x.len();
    [0, 1]
}
";
        let hits = c.check_file("crates/net/src/wire.rs", src);
        assert!(hits.findings.is_empty(), "{:?}", hits.findings);
    }

    #[test]
    fn unsafe_allowlist_budget_and_staleness() {
        let mut cfg = checker().cfg;
        cfg.unsafe_allow.push(UnsafeAllow {
            file: "crates/core/src/policy.rs".into(),
            blocks: 1,
            reason: "test".into(),
        });
        let c = Checker::new(cfg);
        let one = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        assert!(c
            .check_file("crates/core/src/policy.rs", one)
            .findings
            .is_empty());
        let two = "fn f() { unsafe {} }\nfn g() { unsafe {} }\n";
        let over = c.check_file("crates/core/src/policy.rs", two);
        assert_eq!(over.findings.len(), 1);
        assert_eq!(over.findings[0].rule, "unsafe_block");
        let stale = c.check_file("crates/core/src/policy.rs", "fn f() {}\n");
        assert_eq!(stale.findings.len(), 1);
        assert_eq!(stale.findings[0].rule, "stale_allowlist");
        // And a file with no allowlist entry at all:
        let naked = c.check_file("crates/geo/src/lib.rs", one);
        assert_eq!(naked.findings.len(), 1);
        assert_eq!(naked.findings[0].rule, "unsafe_block");
    }
}
