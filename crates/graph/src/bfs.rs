//! Breadth-first search: graph distances and k-neighbourhoods.
//!
//! These implement the paper's Definitions 2.2 and 2.3 directly:
//! `d_G(s_i, s_j)` is the unweighted shortest-path length, and
//! `N^k(s) = { s′ : d_G(s, s′) ≤ k }`. Lemma 2.1 turns these distances into
//! indistinguishability budgets (`ε · d_G`), so BFS correctness is privacy
//! correctness.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Sentinel distance for unreachable node pairs (`d_G = ∞` in the paper).
pub const INFINITE: u32 = u32::MAX;

/// Single-source shortest-path distances from `src` to every node.
///
/// Unreachable nodes get [`INFINITE`]. Runs in `O(V + E)`.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![INFINITE; g.n_nodes() as usize];
    dist[src as usize] = 0;
    let mut queue = VecDeque::with_capacity(64);
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == INFINITE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Shortest-path length between `a` and `b`, or [`INFINITE`] when
/// disconnected. Early-exits as soon as `b` is settled.
pub fn shortest_path_len(g: &Graph, a: NodeId, b: NodeId) -> u32 {
    if a == b {
        return 0;
    }
    let mut dist = vec![INFINITE; g.n_nodes() as usize];
    dist[a as usize] = 0;
    let mut queue = VecDeque::with_capacity(64);
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == INFINITE {
                if w == b {
                    return dv + 1;
                }
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    INFINITE
}

/// The k-neighbourhood `N^k(s)` (paper Def. 2.3): all nodes within `k` hops
/// of `s`, **including `s` itself** (`d_G(s, s) = 0 ≤ k`).
///
/// Pass `k = u32::MAX` for `N^∞(s)`, the connected component of `s`.
/// Results are sorted by node id.
pub fn k_neighbors(g: &Graph, s: NodeId, k: u32) -> Vec<NodeId> {
    let mut dist = vec![INFINITE; g.n_nodes() as usize];
    dist[s as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(s);
    let mut out = vec![s];
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        if dv >= k {
            continue;
        }
        for &w in g.neighbors(v) {
            if dist[w as usize] == INFINITE {
                dist[w as usize] = dv + 1;
                out.push(w);
                queue.push_back(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Eccentricity of `s` within its component: the greatest distance from `s`
/// to any reachable node. Used to compute component diameters for the
/// PIM graph-diameter calibration.
pub fn eccentricity(g: &Graph, s: NodeId) -> u32 {
    bfs_distances(g, s)
        .into_iter()
        .filter(|&d| d != INFINITE)
        .max()
        .unwrap_or(0)
}

/// All-pairs distances restricted to a node subset, as a dense matrix in the
/// subset's index order. `matrix[i][j] = d_G(subset[i], subset[j])`.
///
/// Cost is one BFS per subset element; intended for policy components, which
/// are small relative to the full grid.
pub fn pairwise_distances(g: &Graph, subset: &[NodeId]) -> Vec<Vec<u32>> {
    subset
        .iter()
        .map(|&s| {
            let dist = bfs_distances(g, s);
            subset.iter().map(|&t| dist[t as usize]).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;

    fn path5() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.edges([(0, 1), (1, 2), (2, 3), (3, 4)]);
        b.build()
    }

    #[test]
    fn distances_on_path() {
        let g = path5();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(shortest_path_len(&g, 0, 4), 4);
        assert_eq!(shortest_path_len(&g, 2, 2), 0);
    }

    #[test]
    fn disconnected_is_infinite() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(2, 3);
        let g = b.build();
        assert_eq!(shortest_path_len(&g, 0, 3), INFINITE);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], INFINITE);
        assert_eq!(d[3], INFINITE);
    }

    #[test]
    fn k_neighbors_grow_with_k() {
        let g = path5();
        assert_eq!(k_neighbors(&g, 2, 0), vec![2]);
        assert_eq!(k_neighbors(&g, 2, 1), vec![1, 2, 3]);
        assert_eq!(k_neighbors(&g, 2, 2), vec![0, 1, 2, 3, 4]);
        // N^∞ = whole component.
        assert_eq!(k_neighbors(&g, 2, u32::MAX).len(), 5);
    }

    #[test]
    fn k_neighbors_includes_self_always() {
        let g = Graph::empty(3);
        assert_eq!(k_neighbors(&g, 1, 5), vec![1]);
    }

    #[test]
    fn shortest_path_shorter_through_shortcut() {
        let mut b = GraphBuilder::new(5);
        b.edges([(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let g = b.build();
        assert_eq!(shortest_path_len(&g, 0, 3), 2); // 0-4-3
    }

    #[test]
    fn eccentricity_path_and_complete() {
        let g = path5();
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        let k = generators::complete(6);
        assert_eq!(eccentricity(&k, 0), 1);
        let e = Graph::empty(3);
        assert_eq!(eccentricity(&e, 1), 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pairwise_matrix_symmetric_with_zero_diagonal() {
        let g = path5();
        let subset = vec![0, 2, 4];
        let m = pairwise_distances(&g, &subset);
        assert_eq!(m[0][0], 0);
        assert_eq!(m[0][1], 2);
        assert_eq!(m[0][2], 4);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
    }

    #[test]
    fn grid8_distance_is_chebyshev() {
        // The G1 policy graph's d_G equals Chebyshev distance in cells.
        let (w, h) = (6, 5);
        let g = generators::grid8(w, h);
        let id = |c: u32, r: u32| r * w + c;
        let d = bfs_distances(&g, id(0, 0));
        assert_eq!(d[id(3, 2) as usize], 3);
        assert_eq!(d[id(5, 4) as usize], 5);
        assert_eq!(d[id(0, 4) as usize], 4);
    }
}
