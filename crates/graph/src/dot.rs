//! Graphviz DOT export.
//!
//! Policy graphs are *the* user-facing artefact of PGLP — the demo paper
//! draws them in every figure. This module renders any graph (optionally
//! with fixed node positions, so grid policies lay out like the paper's
//! maps) as DOT for `neato`/`fdp`.

use crate::graph::Graph;

/// Renders `g` as an undirected DOT graph.
///
/// `positions`, when given, must supply one `(x, y)` per node and is
/// emitted as fixed `pos` attributes (inches, `!`-pinned, for `neato -n`).
/// `highlight` nodes are filled red — the experiments use it for infected
/// locations.
pub fn to_dot(g: &Graph, positions: Option<&[(f64, f64)]>, highlight: &[u32]) -> String {
    if let Some(pos) = positions {
        assert_eq!(
            pos.len(),
            g.n_nodes() as usize,
            "one position per node required"
        );
    }
    let mut out = String::from("graph policy {\n  node [shape=circle, fontsize=10];\n");
    for v in g.nodes() {
        let mut attrs = Vec::new();
        if let Some(pos) = positions {
            let (x, y) = pos[v as usize];
            attrs.push(format!("pos=\"{x:.3},{y:.3}!\""));
        }
        if highlight.contains(&v) {
            attrs.push("style=filled, fillcolor=red".to_string());
        }
        if attrs.is_empty() {
            out.push_str(&format!("  n{v};\n"));
        } else {
            out.push_str(&format!("  n{v} [{}];\n", attrs.join(", ")));
        }
    }
    for (a, b) in g.edges() {
        out.push_str(&format!("  n{a} -- n{b};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_structure() {
        let g = generators::path(3);
        let dot = to_dot(&g, None, &[]);
        assert!(dot.starts_with("graph policy {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(!dot.contains("n0 -- n2;"));
    }

    #[test]
    fn dot_with_positions_and_highlight() {
        let g = generators::path(2);
        let dot = to_dot(&g, Some(&[(0.0, 0.0), (1.0, 0.0)]), &[1]);
        assert!(dot.contains("pos=\"0.000,0.000!\""));
        assert!(dot.contains("fillcolor=red"));
        // Only node 1 is highlighted.
        let red_lines = dot.lines().filter(|l| l.contains("red")).count();
        assert_eq!(red_lines, 1);
    }

    #[test]
    #[should_panic(expected = "one position per node")]
    fn dot_position_mismatch_panics() {
        to_dot(&generators::path(3), Some(&[(0.0, 0.0)]), &[]);
    }
}
