//! Connected components via union-find.
//!
//! Lemma 2.1 partitions the policy graph into `∞`-neighbour classes: within
//! a component, indistinguishability degrades with `ε·d_G`; across
//! components nothing is required, and singleton components may be released
//! exactly. Mechanisms therefore operate *per component*, and this module
//! supplies that decomposition.

use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Union-find (disjoint-set forest) with path halving and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    n_sets: u32,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: u32) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            size: vec![1; n as usize],
            n_sets: n,
        }
    }

    /// Representative of the set containing `x`, with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.n_sets -= 1;
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn n_sets(&self) -> u32 {
        self.n_sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// The component decomposition of a graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentLabels {
    /// `label[v]` is the component index of node `v`, in `0..n_components`.
    pub label: Vec<u32>,
    /// Number of components.
    pub n_components: u32,
}

impl ComponentLabels {
    /// Component index of `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.label[v as usize]
    }

    /// `true` when `a` and `b` are `∞`-neighbours (same component).
    #[inline]
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.label[a as usize] == self.label[b as usize]
    }

    /// The sorted member list of component `c`.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// All components as sorted member lists, indexed by component id.
    pub fn all_members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.n_components as usize];
        for (v, &l) in self.label.iter().enumerate() {
            out[l as usize].push(v as NodeId);
        }
        out
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.n_components as usize];
        for &l in &self.label {
            out[l as usize] += 1;
        }
        out
    }
}

/// Computes connected components. Labels are assigned in order of first
/// appearance by node id, so the labelling is deterministic.
pub fn connected_components(g: &Graph) -> ComponentLabels {
    let n = g.n_nodes();
    let mut ds = DisjointSets::new(n);
    for (a, b) in g.edges() {
        ds.union(a, b);
    }
    let mut label = vec![u32::MAX; n as usize];
    let mut next = 0u32;
    for v in 0..n {
        let root = ds.find(v);
        if label[root as usize] == u32::MAX {
            label[root as usize] = next;
            next += 1;
        }
        label[v as usize] = label[root as usize];
    }
    ComponentLabels {
        label,
        n_components: next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn union_find_basics() {
        let mut ds = DisjointSets::new(5);
        assert_eq!(ds.n_sets(), 5);
        assert!(ds.union(0, 1));
        assert!(ds.union(1, 2));
        assert!(!ds.union(0, 2));
        assert!(ds.connected(0, 2));
        assert!(!ds.connected(0, 3));
        assert_eq!(ds.n_sets(), 3);
        assert_eq!(ds.set_size(2), 3);
        assert_eq!(ds.set_size(4), 1);
    }

    #[test]
    fn components_of_two_cliques_and_isolate() {
        let mut b = GraphBuilder::new(7);
        b.edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)]);
        let g = b.build();
        let cc = connected_components(&g);
        assert_eq!(cc.n_components, 3);
        assert!(cc.same_component(0, 2));
        assert!(cc.same_component(3, 5));
        assert!(!cc.same_component(0, 3));
        assert_eq!(cc.members(cc.component_of(6)), vec![6]);
        assert_eq!(cc.sizes().iter().sum::<u32>(), 7);
    }

    #[test]
    fn labels_are_deterministic_and_dense() {
        let mut b = GraphBuilder::new(6);
        b.edges([(4, 5), (0, 1)]);
        let g = b.build();
        let cc = connected_components(&g);
        // First appearance order: node 0's comp = 0, node 2 = 1, node 3 = 2, node 4 = 3.
        assert_eq!(cc.label, vec![0, 0, 1, 2, 3, 3]);
    }

    #[test]
    fn all_members_partition_nodes() {
        let mut b = GraphBuilder::new(8);
        b.edges([(0, 3), (3, 6), (1, 2)]);
        let g = b.build();
        let cc = connected_components(&g);
        let members = cc.all_members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 8);
        for (c, list) in members.iter().enumerate() {
            for &v in list {
                assert_eq!(cc.component_of(v), c as u32);
            }
        }
    }

    #[test]
    fn edgeless_graph_all_singletons() {
        let g = Graph::empty(4);
        let cc = connected_components(&g);
        assert_eq!(cc.n_components, 4);
        assert_eq!(cc.sizes(), vec![1, 1, 1, 1]);
    }
}
