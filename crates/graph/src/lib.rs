//! # panda-graph
//!
//! Undirected-graph substrate for the PANDA / PGLP reproduction.
//!
//! A *location policy graph* (paper Def. 2.1) is an undirected graph whose
//! nodes are possible locations and whose edges are indistinguishability
//! requirements. Everything PGLP computes over policy graphs reduces to the
//! primitives in this crate:
//!
//! * [`Graph`] — compact adjacency-list representation with sorted
//!   neighbour lists (O(log d) edge queries, cache-friendly iteration).
//! * [`bfs`] — unweighted shortest-path distances `d_G` (Def. 2.2),
//!   k-neighbourhoods `N^k(s)` (Def. 2.3) and eccentricities.
//! * [`components`] — connected components, i.e. the `∞`-neighbour classes
//!   of Lemma 2.1, via union-find.
//! * [`distances`] — interned component membership and per-component
//!   distance indexes (dense all-pairs tables below a size budget, the
//!   hub-label oracle above it), computed once so the policy/mechanism hot
//!   path never re-runs BFS.
//! * [`oracle`] — exact 2-hop hub labels via pruned BFS with a
//!   separator-based hub order: city-scale components (50k+ nodes) answer
//!   distance and row queries from a few hundred MB where dense tables
//!   would need gigabytes.
//! * [`generators`] — the policy-graph building blocks: 4/8-neighbour grid
//!   graphs (`G1`), complete graphs (`G2`/δ-location sets), partition
//!   cliques (`Ga`/`Gb`), Erdős–Rényi random graphs (the demo's "Random
//!   Policy Graph" knob), paths, cycles, stars.
//! * [`ops`] — induced subgraphs, node isolation (the `Gc` contact-tracing
//!   transform), unions and edge edits.
//! * [`properties`] — density, degree statistics, diameters.
//!
//! The crate is deliberately independent of the location domain: nodes are
//! plain `u32` indices, and `panda-core` maps grid cells onto them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bfs;
pub mod components;
pub mod distances;
pub mod dot;
pub mod generators;
pub mod graph;
pub mod ops;
pub mod oracle;
pub mod properties;

pub use bfs::{bfs_distances, eccentricity, k_neighbors, shortest_path_len, INFINITE};
pub use components::{connected_components, ComponentLabels, DisjointSets};
pub use distances::{ComponentDistances, DistanceLookup, IndexBackend};
pub use graph::{Graph, GraphBuilder, NodeId};
pub use oracle::HubLabels;
