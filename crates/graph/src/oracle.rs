//! Exact distance oracle for large components: pruned-BFS 2-hop hub labels.
//!
//! Components above the dense-tabulation budget used to fall back to one BFS
//! per distance query (`DistanceLookup::NotIndexed`), which collapses to
//! quadratic repeat work exactly where the paper's city-scale deployment
//! scenario lives. This module implements the *pruned landmark labelling*
//! scheme (Akiba–Iwata–Yoshida style 2-hop covers, exact on unweighted
//! graphs): every node `v` stores a small label `L(v)` of `(hub, d_G(hub, v))`
//! pairs such that for any pair `(a, b)` in one component some shortest path
//! witness is covered,
//!
//! ```text
//! d_G(a, b) = min { d1 + d2 : (h, d1) ∈ L(a), (h, d2) ∈ L(b) }
//! ```
//!
//! **Exactness matters**: the PGLP calibration proof (Theorem 3.2) assumes
//! true graph distances; an approximate oracle would silently weaken the
//! privacy guarantee. Pruned BFS labelling is exact by construction — the
//! pruning step only skips label entries already dominated by an existing
//! 2-hop witness.
//!
//! Label size is governed by the hub order. Degree ordering (the usual
//! default) degenerates on near-uniform-degree graphs like road grids, so
//! hubs are ordered by recursive *BFS-layer separators*: pick a
//! pseudo-peripheral node by double sweep, cut the component at the balanced
//! BFS layer, emit the cut nodes as the next hubs, recurse on the halves
//! (level order). On grid-like graphs this yields `O(√n)`-ish labels — a few
//! hundred entries per node at 50k nodes versus the 50k-entry rows of a
//! dense table.
//!
//! Construction enforces a total-entry budget: graphs where 2-hop covers
//! degenerate (e.g. cliques and other small-diameter expanders have Θ(n²)
//! covers) abort cleanly and the caller falls back to the pre-oracle
//! behaviour. Labels are stored twice — forward CSR sorted by hub for
//! `O(|L(a)| + |L(b)|)` merge-join point queries, and an inverted hub → node
//! CSR so a full member-order distance row materialises in one join pass
//! instead of `k` point queries.

use crate::bfs::INFINITE;
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Parts at or below this size are emitted whole instead of being cut
/// further; separators on tiny parts cost more order entropy than they save.
const MIN_SEPARATOR_PART: usize = 8;

/// 2-hop hub labels of one connected component.
///
/// All node identifiers inside are *member ranks* (positions within the
/// component's sorted member slice) and all hub identifiers are *hub
/// sequence numbers* (positions in the importance order), so the structure
/// is self-contained and independent of global node ids.
#[derive(Debug, Clone)]
pub struct HubLabels {
    /// Component size.
    k: usize,
    /// Forward labels, CSR over member rank. Entries of one label are
    /// sorted by hub sequence (construction emits hubs in order, so this is
    /// insertion order).
    label_offsets: Vec<u32>,
    label_hubs: Vec<u32>,
    label_dists: Vec<u16>,
    /// Inverted index, CSR over hub sequence: the member ranks carrying a
    /// hub, with their distance to it. Ranks ascend within one hub list.
    inv_offsets: Vec<u32>,
    inv_ranks: Vec<u32>,
    inv_dists: Vec<u16>,
}

impl HubLabels {
    /// Builds hub labels for the component whose sorted member list is
    /// `members` (rank `i` ⇔ `members[i]`). The members must form exactly
    /// one connected component of `g`.
    ///
    /// Returns `None` when the total label-entry count would exceed
    /// `max_entries` (degenerate 2-hop covers — the caller keeps its BFS
    /// fallback) or when `members.len() > u16::MAX` (distances could
    /// overflow the storage width).
    pub fn build(g: &Graph, members: &[NodeId], max_entries: usize) -> Option<HubLabels> {
        let k = members.len();
        if k == 0 || k > usize::from(u16::MAX) {
            return None;
        }
        // CSR offsets are u32: safe because total entries ≤ k² < u32::MAX
        // for k ≤ 65535, independent of the budget.
        let max_entries = max_entries.min(k * k);
        if k == 1 {
            return Some(HubLabels {
                k: 1,
                label_offsets: vec![0, 1],
                label_hubs: vec![0],
                label_dists: vec![0],
                inv_offsets: vec![0, 1],
                inv_ranks: vec![0],
                inv_dists: vec![0],
            });
        }

        // Global node id -> member rank (u32::MAX outside the component).
        let mut rank_of = vec![u32::MAX; g.n_nodes() as usize];
        for (r, &v) in members.iter().enumerate() {
            rank_of[v as usize] = r as u32;
        }

        let order = separator_order(g, members, &rank_of);
        debug_assert_eq!(order.len(), k);

        // Pruned BFS from each hub in importance order.
        let mut labels: Vec<Vec<(u32, u16)>> = vec![Vec::new(); k];
        // T[h] = distance from the current hub to hub `h`, loaded from the
        // current hub's own label for O(|L(w)|) prune queries.
        let mut t_dist = vec![INFINITE; k];
        let mut visited = vec![u32::MAX; k];
        let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
        let mut total: usize = 0;

        for (t, &hub_rank) in order.iter().enumerate() {
            let t = t as u32;
            let hub_node = members[hub_rank as usize];
            for &(h, dh) in &labels[hub_rank as usize] {
                t_dist[h as usize] = u32::from(dh);
            }
            visited[hub_rank as usize] = t;
            queue.push_back((hub_node, 0));
            while let Some((v, d)) = queue.pop_front() {
                let rv = rank_of[v as usize];
                debug_assert_ne!(rv, u32::MAX, "BFS escaped the component");
                // Prune: an earlier hub already witnesses a path of length
                // ≤ d from the current hub to v, so no label is needed here
                // and the subtree below v is covered transitively.
                let mut covered = INFINITE;
                for &(h, dh) in &labels[rv as usize] {
                    let th = t_dist[h as usize];
                    if th != INFINITE {
                        covered = covered.min(th + u32::from(dh));
                    }
                }
                if covered <= d {
                    continue;
                }
                labels[rv as usize].push((t, d as u16));
                total += 1;
                if total > max_entries {
                    return None;
                }
                for &w in g.neighbors(v) {
                    let rw = rank_of[w as usize];
                    if visited[rw as usize] != t {
                        visited[rw as usize] = t;
                        queue.push_back((w, d + 1));
                    }
                }
            }
            // `labels[hub_rank]` gained `(t, 0)` during the BFS; resetting
            // through it clears every T slot that was loaded (plus the new
            // entry, harmlessly).
            for &(h, _) in &labels[hub_rank as usize] {
                t_dist[h as usize] = INFINITE;
            }
        }

        // Freeze into forward CSR + inverted CSR (counting sort by hub).
        let mut label_offsets = Vec::with_capacity(k + 1);
        let mut label_hubs = Vec::with_capacity(total);
        let mut label_dists = Vec::with_capacity(total);
        label_offsets.push(0u32);
        let mut inv_counts = vec![0u32; k];
        for label in &labels {
            for &(h, d) in label {
                label_hubs.push(h);
                label_dists.push(d);
                inv_counts[h as usize] += 1;
            }
            label_offsets.push(label_hubs.len() as u32);
        }
        let mut inv_offsets = vec![0u32; k + 1];
        for h in 0..k {
            inv_offsets[h + 1] = inv_offsets[h] + inv_counts[h];
        }
        let mut inv_ranks = vec![0u32; total];
        let mut inv_dists = vec![0u16; total];
        let mut cursor: Vec<u32> = inv_offsets[..k].to_vec();
        for (r, label) in labels.iter().enumerate() {
            for &(h, d) in label {
                let pos = cursor[h as usize] as usize;
                inv_ranks[pos] = r as u32;
                inv_dists[pos] = d;
                cursor[h as usize] += 1;
            }
        }

        Some(HubLabels {
            k,
            label_offsets,
            label_hubs,
            label_dists,
            inv_offsets,
            inv_ranks,
            inv_dists,
        })
    }

    /// Component size.
    #[inline]
    pub fn len(&self) -> usize {
        self.k
    }

    /// `true` when the component is empty (never produced by
    /// [`HubLabels::build`]; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Total label entries across all members.
    #[inline]
    pub fn n_entries(&self) -> usize {
        self.label_hubs.len()
    }

    /// Largest single label.
    pub fn max_label_len(&self) -> usize {
        self.label_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Forward label of member rank `r` as parallel `(hubs, dists)` slices.
    #[inline]
    fn label(&self, r: u32) -> (&[u32], &[u16]) {
        let lo = self.label_offsets[r as usize] as usize;
        let hi = self.label_offsets[r as usize + 1] as usize;
        (&self.label_hubs[lo..hi], &self.label_dists[lo..hi])
    }

    /// Exact distance between member ranks `a` and `b`: sorted merge over
    /// the two labels, `O(|L(a)| + |L(b)|)`.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        let (ha, da) = self.label(a);
        let (hb, db) = self.label(b);
        let (mut i, mut j) = (0usize, 0usize);
        let mut best = INFINITE;
        while i < ha.len() && j < hb.len() {
            match ha[i].cmp(&hb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let cand = u32::from(da[i]) + u32::from(db[j]);
                    best = best.min(cand);
                    i += 1;
                    j += 1;
                }
            }
        }
        debug_assert_ne!(best, INFINITE, "2-hop cover must witness every pair");
        best
    }

    /// Fills `out` (length [`HubLabels::len`]) with the distances from
    /// member rank `s` to every member, in rank order — the oracle
    /// equivalent of one dense-table row, computed by joining `L(s)` with
    /// the inverted hub index.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.len()`.
    pub fn row_into(&self, s: u32, out: &mut [u16]) {
        assert_eq!(out.len(), self.k, "row buffer must cover the component");
        out.fill(u16::MAX);
        let (hubs, dists) = self.label(s);
        for (&h, &d1) in hubs.iter().zip(dists) {
            let lo = self.inv_offsets[h as usize] as usize;
            let hi = self.inv_offsets[h as usize + 1] as usize;
            for (&r, &d2) in self.inv_ranks[lo..hi].iter().zip(&self.inv_dists[lo..hi]) {
                // Saturating: candidate sums may hit u16::MAX, but the true
                // distance (≤ k − 1 < u16::MAX) is always witnessed exactly.
                let cand = d1.saturating_add(d2);
                let slot = &mut out[r as usize];
                if cand < *slot {
                    *slot = cand;
                }
            }
        }
        debug_assert!(
            out.iter().all(|&d| d < u16::MAX),
            "row join must cover the whole component"
        );
    }

    /// Heap bytes of the label structure (forward + inverted CSR).
    pub fn memory_bytes(&self) -> usize {
        self.label_offsets.len() * std::mem::size_of::<u32>()
            + self.label_hubs.len() * std::mem::size_of::<u32>()
            + self.label_dists.len() * std::mem::size_of::<u16>()
            + self.inv_offsets.len() * std::mem::size_of::<u32>()
            + self.inv_ranks.len() * std::mem::size_of::<u32>()
            + self.inv_dists.len() * std::mem::size_of::<u16>()
    }
}

/// An edge is *shortcut-like* when removing it leaves no alternative path
/// of at most this length between its endpoints. Grid deletions leave
/// detours of 2–4 hops; bridges/transit links leave none nearby.
const SHORTCUT_DETOUR: u32 = 4;

/// Ranks of members incident to shortcut-like edges (deduplicated,
/// ascending). These act as highway entrances — a large share of shortest
/// paths in a small-world grid routes through them — so they make the most
/// valuable hubs.
fn shortcut_endpoints(g: &Graph, members: &[NodeId], rank_of: &[u32]) -> Vec<u32> {
    let k = members.len();
    let mut flagged = vec![false; k];
    let mut dist = vec![INFINITE; k];
    let mut touched: Vec<u32> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    for (ru, &u) in members.iter().enumerate() {
        let ru = ru as u32;
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            let rv = rank_of[v as usize];
            if rv == u32::MAX {
                continue;
            }
            // Bounded BFS from u avoiding the direct edge {u, v}.
            dist[ru as usize] = 0;
            touched.push(ru);
            queue.push_back(ru);
            let mut found = false;
            'bfs: while let Some(r) = queue.pop_front() {
                let d = dist[r as usize];
                if d >= SHORTCUT_DETOUR {
                    continue;
                }
                let node = members[r as usize];
                for &w in g.neighbors(node) {
                    if node == u && w == v {
                        continue;
                    }
                    let rw = rank_of[w as usize];
                    if rw == u32::MAX || dist[rw as usize] != INFINITE {
                        continue;
                    }
                    if rw == rv {
                        found = true;
                        break 'bfs;
                    }
                    dist[rw as usize] = d + 1;
                    touched.push(rw);
                    queue.push_back(rw);
                }
            }
            queue.clear();
            for &r in &touched {
                dist[r as usize] = INFINITE;
            }
            touched.clear();
            if !found {
                flagged[ru as usize] = true;
                flagged[rv as usize] = true;
            }
        }
    }
    (0..k as u32).filter(|&r| flagged[r as usize]).collect()
}

/// Hub importance order for one component: shortcut endpoints first, then
/// recursive BFS-layer separators emitted level-order (top separator
/// first). Returns member ranks, most important first; every rank appears
/// exactly once.
fn separator_order(g: &Graph, members: &[NodeId], rank_of: &[u32]) -> Vec<u32> {
    let k = members.len();
    let mut order: Vec<u32> = Vec::with_capacity(k);
    // Scratch, all rank-indexed: BFS distances, part tags, piece-split marks.
    let mut dist = vec![INFINITE; k];
    let mut tag = vec![0u32; k];
    let mut piece_seen = vec![false; k];
    let mut queue: VecDeque<u32> = VecDeque::new();

    // Highway hubs jump the separator hierarchy entirely. If a large
    // fraction of the component is "shortcut endpoints" the graph is not a
    // grid with a few highways but a tree/cycle-like topology where every
    // edge is a bridge — there the separator hierarchy alone orders better.
    let mut highways = shortcut_endpoints(g, members, rank_of);
    if highways.len() * 16 > k {
        highways.clear();
    }
    let mut is_highway = vec![false; k];
    for &r in &highways {
        is_highway[r as usize] = true;
    }
    order.extend_from_slice(&highways);

    let mut parts: VecDeque<Vec<u32>> = VecDeque::new();
    let rest: Vec<u32> = (0..k as u32).filter(|&r| !is_highway[r as usize]).collect();
    if !rest.is_empty() {
        parts.push_back(rest);
    }
    let mut next_tag = 1u32;

    // Restricted BFS from `src` over ranks tagged `t`; fills `dist` for the
    // reached ranks and returns (farthest rank, eccentricity) with smallest-
    // rank tie-breaking. Caller resets `dist`.
    let bfs_part = |src: u32,
                    t: u32,
                    dist: &mut [u32],
                    queue: &mut VecDeque<u32>,
                    tag: &[u32]|
     -> (u32, u32) {
        dist[src as usize] = 0;
        queue.push_back(src);
        let (mut far, mut ecc) = (src, 0u32);
        while let Some(r) = queue.pop_front() {
            let d = dist[r as usize];
            if d > ecc || (d == ecc && r < far) {
                far = r;
                ecc = d;
            }
            for &w in g.neighbors(members[r as usize]) {
                let rw = rank_of[w as usize];
                if rw != u32::MAX && tag[rw as usize] == t && dist[rw as usize] == INFINITE {
                    dist[rw as usize] = d + 1;
                    queue.push_back(rw);
                }
            }
        }
        (far, ecc)
    };

    while let Some(part) = parts.pop_front() {
        if part.len() <= MIN_SEPARATOR_PART {
            order.extend_from_slice(&part);
            continue;
        }
        let t = next_tag;
        next_tag += 1;
        for &r in &part {
            tag[r as usize] = t;
        }

        // Split into connected pieces first: separator removal disconnects
        // halves, and each piece gets its own cut.
        let mut pieces: Vec<Vec<u32>> = Vec::new();
        for &r in &part {
            if piece_seen[r as usize] {
                continue;
            }
            let _ = bfs_part(r, t, &mut dist, &mut queue, &tag);
            let mut piece: Vec<u32> = part
                .iter()
                .copied()
                .filter(|&x| dist[x as usize] != INFINITE && !piece_seen[x as usize])
                .collect();
            for &x in &piece {
                piece_seen[x as usize] = true;
                dist[x as usize] = INFINITE;
            }
            piece.sort_unstable();
            pieces.push(piece);
        }
        for &r in &part {
            piece_seen[r as usize] = false;
        }
        if pieces.len() > 1 {
            for piece in pieces {
                parts.push_back(piece);
            }
            continue;
        }
        let part = pieces.pop().expect("non-empty part has a piece");

        // Double sweep: a pseudo-peripheral root gives long, thin BFS
        // layerings whose middle layer is a good separator on grid-like
        // graphs.
        let (a, _) = bfs_part(part[0], t, &mut dist, &mut queue, &tag);
        for &r in &part {
            dist[r as usize] = INFINITE;
        }
        let (_, ecc) = bfs_part(a, t, &mut dist, &mut queue, &tag);
        if ecc <= 1 {
            // Diameter ≤ 2 piece (clique-like): no useful cut exists.
            order.extend_from_slice(&part);
            for &r in &part {
                dist[r as usize] = INFINITE;
            }
            continue;
        }

        // Separator layer: BFS layering guarantees no edge skips a layer,
        // so every layer is a true cut. Among layers keeping at least a
        // quarter of the part on each side, take the *thinnest* (cut size
        // drives label growth much harder than residual imbalance; on
        // shortcut-riddled grids the balanced layer can be several times
        // wider than a nearby thin one). Fall back to the most balanced
        // layer when no layer satisfies the quarter rule.
        let mut layer_counts = vec![0u32; ecc as usize + 1];
        for &r in &part {
            layer_counts[dist[r as usize] as usize] += 1;
        }
        let total = part.len() as u32;
        let (mut best_m, mut best_cost, mut below_m) = (1u32, u32::MAX, 0u32);
        let (mut thin_m, mut thin_size) = (0u32, u32::MAX);
        for m in 1..=ecc {
            below_m += layer_counts[m as usize - 1];
            let layer = layer_counts[m as usize];
            let above = total - below_m - layer;
            let cost = below_m.max(above);
            if cost < best_cost {
                best_cost = cost;
                best_m = m;
            }
            if below_m * 4 >= total && above * 4 >= total && layer < thin_size {
                thin_size = layer;
                thin_m = m;
            }
        }
        let best_m = if thin_size != u32::MAX {
            thin_m
        } else {
            best_m
        };

        let mut below: Vec<u32> = Vec::new();
        let mut above: Vec<u32> = Vec::new();
        for &r in &part {
            let d = dist[r as usize];
            match d.cmp(&best_m) {
                std::cmp::Ordering::Less => below.push(r),
                std::cmp::Ordering::Equal => order.push(r),
                std::cmp::Ordering::Greater => above.push(r),
            }
            dist[r as usize] = INFINITE;
        }
        if !below.is_empty() {
            parts.push_back(below);
        }
        if !above.is_empty() {
            parts.push_back(above);
        }
    }

    debug_assert_eq!(order.len(), k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;
    use crate::components::connected_components;
    use crate::generators;

    /// Builds labels for the whole (connected) graph and checks every pair
    /// and every row against fresh BFS.
    fn assert_exact(g: &Graph) {
        let members: Vec<NodeId> = g.nodes().collect();
        let hl = HubLabels::build(g, &members, usize::MAX >> 1).expect("within budget");
        assert_eq!(hl.len(), members.len());
        let mut row = vec![0u16; members.len()];
        for a in g.nodes() {
            let fresh = bfs_distances(g, a);
            hl.row_into(a, &mut row);
            for b in g.nodes() {
                assert_eq!(
                    hl.distance(a, b),
                    fresh[b as usize],
                    "distance({a},{b}) in {}-node graph",
                    members.len()
                );
                assert_eq!(u32::from(row[b as usize]), fresh[b as usize]);
            }
        }
    }

    #[test]
    fn exact_on_basic_shapes() {
        assert_exact(&generators::path(17));
        assert_exact(&generators::cycle(12));
        assert_exact(&generators::star(9));
        assert_exact(&generators::complete(7));
        assert_exact(&generators::grid4(7, 5));
        assert_exact(&generators::grid8(6, 9));
    }

    #[test]
    fn singleton_component() {
        let g = Graph::empty(3);
        let hl = HubLabels::build(&g, &[1], 16).unwrap();
        assert_eq!(hl.len(), 1);
        assert_eq!(hl.distance(0, 0), 0);
        let mut row = [7u16];
        hl.row_into(0, &mut row);
        assert_eq!(row, [0]);
    }

    #[test]
    fn one_component_of_many() {
        // Path 0-1-2-3 plus triangle 4-5-6: label only the path.
        let mut b = crate::graph::GraphBuilder::new(7);
        b.edges([(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (4, 6)]);
        let g = b.build();
        let hl = HubLabels::build(&g, &[0, 1, 2, 3], 1 << 10).unwrap();
        assert_eq!(hl.distance(0, 3), 3);
        assert_eq!(hl.distance(1, 2), 1);
        let mut row = vec![0u16; 4];
        hl.row_into(3, &mut row);
        assert_eq!(row, [3, 2, 1, 0]);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // Cliques have Θ(n²) 2-hop covers; a tight budget must abort.
        let g = generators::complete(32);
        let members: Vec<NodeId> = g.nodes().collect();
        assert!(HubLabels::build(&g, &members, 64).is_none());
        // ... and a generous one succeeds.
        assert!(HubLabels::build(&g, &members, 32 * 32).is_some());
    }

    #[test]
    fn labels_stay_small_on_grids() {
        let g = generators::grid8(40, 40);
        let members: Vec<NodeId> = g.nodes().collect();
        let hl = HubLabels::build(&g, &members, usize::MAX >> 1).unwrap();
        let avg = hl.n_entries() as f64 / 1600.0;
        // Separator ordering keeps labels near O(√n); dense rows would be
        // 1600 entries each.
        assert!(avg < 120.0, "average label length {avg}");
        // At 1600 nodes the 12-byte double-stored entries only halve the
        // dense footprint; the gap widens with n (entries grow ~√n per
        // node, dense rows grow linearly).
        assert!(hl.memory_bytes() < 1600 * 1600 * 2 / 2);
    }

    #[test]
    fn exact_on_random_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xFACE);
        for trial in 0..30 {
            let n = rng.gen_range(2..60);
            let p = rng.gen_range(0.02..0.3);
            let g = generators::erdos_renyi(&mut rng, n, p);
            let cc = connected_components(&g);
            for c in 0..cc.n_components {
                let members = cc.members(c);
                let hl = HubLabels::build(&g, &members, usize::MAX >> 1)
                    .unwrap_or_else(|| panic!("trial {trial}: build failed"));
                let mut row = vec![0u16; members.len()];
                for (i, &a) in members.iter().enumerate() {
                    let fresh = bfs_distances(&g, a);
                    hl.row_into(i as u32, &mut row);
                    for (j, &b) in members.iter().enumerate() {
                        assert_eq!(hl.distance(i as u32, j as u32), fresh[b as usize]);
                        assert_eq!(u32::from(row[j]), fresh[b as usize]);
                    }
                }
            }
        }
    }

    #[test]
    fn memory_accounting_matches_entry_count() {
        let g = generators::grid4(10, 10);
        let members: Vec<NodeId> = g.nodes().collect();
        let hl = HubLabels::build(&g, &members, usize::MAX >> 1).unwrap();
        // Forward + inverted: each entry stored twice at 6 bytes, plus two
        // (k + 1)-length offset arrays.
        let expect = hl.n_entries() * 12 + 2 * (hl.len() + 1) * 4;
        assert_eq!(hl.memory_bytes(), expect);
    }
}
