//! Compact undirected graph with sorted adjacency lists.

use serde::{Deserialize, Serialize};

/// Node index within a [`Graph`]. Policy graphs map location ids onto these.
pub type NodeId = u32;

/// An undirected simple graph (no self-loops, no parallel edges).
///
/// Neighbour lists are kept sorted, giving `O(log d)` membership queries and
/// deterministic iteration order — important both for reproducible sampling
/// and for the exact privacy audits in `panda-core`, which enumerate
/// distributions in node order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    n_edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` nodes. In policy terms: every location is an
    /// isolated node, i.e. everything may be released exactly (the extreme
    /// no-privacy policy of Lemma 2.1's discussion).
    pub fn empty(n: u32) -> Self {
        Graph {
            adj: vec![Vec::new(); n as usize],
            n_edges: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> u32 {
        self.adj.len() as u32
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// `true` when the graph has no edges at all.
    pub fn is_edgeless(&self) -> bool {
        self.n_edges == 0
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// `true` when `{a, b}` is an edge (the paper's 1-neighbour relation).
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a as usize >= self.adj.len() || b as usize >= self.adj.len() {
            return false;
        }
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n_nodes()
    }

    /// Iterator over all undirected edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            let a = a as NodeId;
            nbrs.iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Inserts an edge, keeping adjacency sorted. Returns `true` when the
    /// edge was new.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(a != b, "self-loops are not allowed in policy graphs");
        assert!(
            (a as usize) < self.adj.len() && (b as usize) < self.adj.len(),
            "edge endpoint out of range"
        );
        match self.adj[a as usize].binary_search(&b) {
            Ok(_) => false,
            Err(pos_a) => {
                self.adj[a as usize].insert(pos_a, b);
                let pos_b = self.adj[b as usize]
                    .binary_search(&a)
                    .expect_err("adjacency lists out of sync");
                self.adj[b as usize].insert(pos_b, a);
                self.n_edges += 1;
                true
            }
        }
    }

    /// Removes an edge if present. Returns `true` when it existed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a as usize >= self.adj.len() || b as usize >= self.adj.len() || a == b {
            return false;
        }
        match self.adj[a as usize].binary_search(&b) {
            Ok(pos_a) => {
                self.adj[a as usize].remove(pos_a);
                let pos_b = self.adj[b as usize]
                    .binary_search(&a)
                    .expect("adjacency lists out of sync");
                self.adj[b as usize].remove(pos_b);
                self.n_edges -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Removes every edge incident to `v`, making it an isolated node.
    ///
    /// This is the `Gc` transform of Fig. 4: isolating an infected location
    /// lifts its indistinguishability requirement so it can be disclosed.
    pub fn isolate_node(&mut self, v: NodeId) {
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        for b in &nbrs {
            let pos = self.adj[*b as usize]
                .binary_search(&v)
                .expect("adjacency lists out of sync");
            self.adj[*b as usize].remove(pos);
        }
        self.n_edges -= nbrs.len();
    }

    /// `true` when `v` has no incident edges.
    pub fn is_isolated(&self, v: NodeId) -> bool {
        self.adj[v as usize].is_empty()
    }
}

/// Incremental builder that tolerates duplicate and unordered edge input.
///
/// Collects edges, then sorts and deduplicates once — cheaper than repeated
/// sorted insertion when constructing large generated graphs.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Queues an edge; order of endpoints and duplicates do not matter.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn edge(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        assert!(a != b, "self-loops are not allowed in policy graphs");
        assert!(a < self.n && b < self.n, "edge endpoint out of range");
        self.edges.push(if a < b { (a, b) } else { (b, a) });
        self
    }

    /// Queues many edges at once.
    pub fn edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) -> &mut Self {
        for (a, b) in iter {
            self.edge(a, b);
        }
        self
    }

    /// Number of nodes the built graph will have.
    pub fn n_nodes(&self) -> u32 {
        self.n
    }

    /// Finalises the graph.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut adj = vec![Vec::new(); self.n as usize];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Graph {
            adj,
            n_edges: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 0);
        assert!(g.is_edgeless());
        assert!(g.nodes().all(|v| g.is_isolated(v)));
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::empty(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(1, 0), "duplicate edge must be rejected");
        assert_eq!(g.n_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 99));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Graph::empty(3).add_edge(1, 1);
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.n_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn isolate_node_clears_incident_edges() {
        let mut g = Graph::empty(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(2, 3);
        g.isolate_node(0);
        assert!(g.is_isolated(0));
        assert_eq!(g.n_edges(), 1);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let mut g = Graph::empty(4);
        g.add_edge(2, 0);
        g.add_edge(1, 3);
        g.add_edge(0, 1);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b) in edges {
            assert!(a < b);
            assert!(g.has_edge(a, b));
        }
    }

    #[test]
    fn builder_dedups_and_sorts() {
        let mut b = GraphBuilder::new(5);
        b.edge(3, 1).edge(1, 3).edge(0, 4).edge(4, 0).edge(2, 3);
        let g = b.build();
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert!(g.has_edge(4, 0));
    }

    #[test]
    fn builder_bulk_edges() {
        let mut b = GraphBuilder::new(4);
        b.edges([(0, 1), (1, 2), (2, 3)]);
        let g = b.build();
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn clone_preserves_structure() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 2);
        let g2 = g.clone();
        assert_eq!(g, g2);
        assert_eq!(g2.n_edges(), 1);
    }
}
