//! Global graph properties: density, degrees, diameters.
//!
//! The demo UI reports a policy graph's *Size* and *Density* (Fig. 5); the
//! PIM calibration needs component diameters; and the policy-design
//! heuristics in `panda-core` reason about degree distributions (a location's
//! degree is the size of its plausible-deniability set).

use crate::bfs;
use crate::components::connected_components;
use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Edge density: `m / (n(n-1)/2)`, the Fig. 5 "Density" knob. Zero for
/// graphs with fewer than two nodes.
pub fn density(g: &Graph) -> f64 {
    let n = g.n_nodes() as f64;
    if n < 2.0 {
        return 0.0;
    }
    g.n_edges() as f64 / (n * (n - 1.0) / 2.0)
}

/// Summary statistics of the degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of isolated (degree-0) nodes — locations releasable exactly.
    pub isolated: usize,
}

/// Computes [`DegreeStats`]. Returns all-zeros for the empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.n_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            isolated: 0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut isolated = 0usize;
    for v in g.nodes() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / n as f64,
        isolated,
    }
}

/// `true` when the graph is connected (and non-empty).
pub fn is_connected(g: &Graph) -> bool {
    g.n_nodes() > 0 && connected_components(g).n_components == 1
}

/// Diameter of the component containing `v`: the largest `d_G` between any
/// two nodes reachable from `v`.
///
/// Exact (one BFS per component member); policy components are small.
pub fn component_diameter(g: &Graph, v: NodeId) -> u32 {
    let members = bfs::k_neighbors(g, v, u32::MAX);
    members
        .iter()
        .map(|&m| bfs::eccentricity(g, m))
        .max()
        .unwrap_or(0)
}

/// Diameter of every component, indexed by component id.
pub fn component_diameters(g: &Graph) -> Vec<u32> {
    let cc = connected_components(g);
    let mut out = vec![0u32; cc.n_components as usize];
    for (c, members) in cc.all_members().into_iter().enumerate() {
        out[c] = members
            .iter()
            .map(|&m| bfs::eccentricity(g, m))
            .max()
            .unwrap_or(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn density_of_known_graphs() {
        assert_eq!(density(&generators::complete(10)), 1.0);
        assert_eq!(density(&Graph::empty(10)), 0.0);
        assert_eq!(density(&Graph::empty(1)), 0.0);
        let p = generators::path(4); // 3 edges of 6 possible
        assert!((density(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_star() {
        let s = generators::star(5);
        let st = degree_stats(&s);
        assert_eq!(st.min, 1);
        assert_eq!(st.max, 4);
        assert_eq!(st.isolated, 0);
        assert!((st.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_with_isolated() {
        let mut g = Graph::empty(4);
        g.add_edge(0, 1);
        let st = degree_stats(&g);
        assert_eq!(st.isolated, 2);
        assert_eq!(st.min, 0);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::cycle(5)));
        assert!(!is_connected(&Graph::empty(2)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(0)));
    }

    #[test]
    fn diameters() {
        let p = generators::path(6);
        assert_eq!(component_diameter(&p, 0), 5);
        assert_eq!(component_diameter(&p, 3), 5);
        let k = generators::complete(4);
        assert_eq!(component_diameter(&k, 2), 1);

        let mut g = Graph::empty(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2); // path of 3 + two singletons
        let ds = component_diameters(&g);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0], 2);
        assert_eq!(ds[1], 0);
        assert_eq!(ds[2], 0);
    }

    #[test]
    fn grid8_diameter_is_max_chebyshev() {
        let g = generators::grid8(5, 3);
        assert_eq!(component_diameter(&g, 0), 4);
    }
}
