//! Precomputed per-component all-pairs distance tables.
//!
//! Every PGLP mechanism call needs `d_G(s, z)` for all `z` in the component
//! of `s` (Def. 2.2), and the seed implementation re-ran a BFS on every
//! query. This module computes those distances **once**: for each connected
//! component, one BFS per member fills a dense `k × k` table of `u16` hop
//! counts, and component membership is interned as contiguous slices so no
//! per-query allocation is needed.
//!
//! Components whose table would exceed a size budget (quadratic memory!)
//! are left un-tabulated; callers fall back to on-demand BFS for those, so
//! huge policies degrade to the seed behaviour instead of exhausting memory.

use crate::bfs;
use crate::components::{connected_components, ComponentLabels};
use crate::graph::{Graph, NodeId};

/// Default per-component table budget: 16 Mi entries (32 MiB of `u16`),
/// i.e. components of up to 4096 nodes are fully tabulated.
pub const DEFAULT_MAX_TABLE_ENTRIES: usize = 1 << 24;

/// Result of a distance lookup in [`ComponentDistances`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceLookup {
    /// The nodes are in different components (`d_G = ∞`).
    DifferentComponents,
    /// Tabulated distance.
    Known(u32),
    /// Same component, but the component exceeded the table budget; the
    /// caller must BFS.
    NotIndexed,
}

/// Dense distance table of one component: `d[i * k + j]` is the hop count
/// between the `i`-th and `j`-th member (member order = sorted node id).
#[derive(Debug, Clone)]
struct DistanceTable {
    k: usize,
    d: Vec<u16>,
}

/// Interned component membership plus per-component all-pairs distances.
///
/// Construction runs one BFS per node of every tabulated component —
/// `O(Σ k·(V_C + E_C))` total — after which [`ComponentDistances::distance`]
/// is a table lookup and [`ComponentDistances::members_of`] is a slice
/// borrow.
#[derive(Debug, Clone)]
pub struct ComponentDistances {
    labels: ComponentLabels,
    /// `members[offsets[c]..offsets[c + 1]]` are the sorted nodes of
    /// component `c`.
    offsets: Vec<u32>,
    members: Vec<NodeId>,
    /// `rank[v]` is the position of `v` within its component slice.
    rank: Vec<u32>,
    /// Indexed by component id; `None` when over the size budget.
    tables: Vec<Option<DistanceTable>>,
}

impl ComponentDistances {
    /// Builds tables for `g` with the default size budget.
    pub fn new(g: &Graph) -> Self {
        Self::with_budget(g, DEFAULT_MAX_TABLE_ENTRIES)
    }

    /// Builds tables for `g`, tabulating only components with at most
    /// `max_table_entries` (= k²) table cells.
    pub fn with_budget(g: &Graph, max_table_entries: usize) -> Self {
        let labels = connected_components(g);
        let n = g.n_nodes() as usize;
        let n_comp = labels.n_components as usize;

        // Intern membership: counting sort by component label.
        let mut counts = vec![0u32; n_comp];
        for &l in &labels.label {
            counts[l as usize] += 1;
        }
        let mut offsets = vec![0u32; n_comp + 1];
        for c in 0..n_comp {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut members = vec![0 as NodeId; n];
        let mut rank = vec![0u32; n];
        let mut cursor = offsets.clone();
        // Node ids ascend, so each component slice comes out sorted.
        for v in 0..n as u32 {
            let c = labels.label[v as usize] as usize;
            let pos = cursor[c];
            members[pos as usize] = v;
            rank[v as usize] = pos - offsets[c];
            cursor[c] += 1;
        }

        // Per-component all-pairs BFS with a reusable scratch buffer.
        let mut tables: Vec<Option<DistanceTable>> = Vec::with_capacity(n_comp);
        let mut scratch = vec![bfs::INFINITE; n];
        let mut queue = std::collections::VecDeque::new();
        for c in 0..n_comp {
            let slice = &members[offsets[c] as usize..offsets[c + 1] as usize];
            let k = slice.len();
            // Two skip conditions: the entry budget (quadratic memory), and
            // the u16 storage width — a component of k nodes has
            // eccentricity < k, so k ≤ 65535 guarantees distances fit.
            if k.saturating_mul(k) > max_table_entries || k > usize::from(u16::MAX) {
                tables.push(None);
                continue;
            }
            let mut d = vec![0u16; k * k];
            for (i, &src) in slice.iter().enumerate() {
                // BFS from src; only nodes of this component are reachable.
                scratch[src as usize] = 0;
                queue.push_back(src);
                while let Some(v) = queue.pop_front() {
                    let dv = scratch[v as usize];
                    for &w in g.neighbors(v) {
                        if scratch[w as usize] == bfs::INFINITE {
                            scratch[w as usize] = dv + 1;
                            queue.push_back(w);
                        }
                    }
                }
                for (j, &dst) in slice.iter().enumerate() {
                    debug_assert_ne!(scratch[dst as usize], bfs::INFINITE);
                    // Cannot truncate: eccentricity < k ≤ u16::MAX (checked
                    // above), so every in-component distance fits.
                    debug_assert!(scratch[dst as usize] <= u32::from(u16::MAX));
                    d[i * k + j] = scratch[dst as usize] as u16;
                }
                // Reset only the touched entries.
                for &v in slice {
                    scratch[v as usize] = bfs::INFINITE;
                }
            }
            tables.push(Some(DistanceTable { k, d }));
        }

        ComponentDistances {
            labels,
            offsets,
            members,
            rank,
            tables,
        }
    }

    /// The component decomposition the tables are built over.
    #[inline]
    pub fn labels(&self) -> &ComponentLabels {
        &self.labels
    }

    /// Number of components.
    #[inline]
    pub fn n_components(&self) -> u32 {
        self.labels.n_components
    }

    /// Component id of `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.labels.component_of(v)
    }

    /// `true` when `a` and `b` share a component.
    #[inline]
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.labels.same_component(a, b)
    }

    /// The sorted members of component `c`, as an interned slice — no
    /// allocation, unlike [`ComponentLabels::members`].
    #[inline]
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.members[self.offsets[c as usize] as usize..self.offsets[c as usize + 1] as usize]
    }

    /// The sorted members of the component containing `v`.
    #[inline]
    pub fn members_of(&self, v: NodeId) -> &[NodeId] {
        self.members(self.component_of(v))
    }

    /// Position of `v` within [`ComponentDistances::members_of`]`(v)`.
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// `true` when the component of `v` has a distance table.
    #[inline]
    pub fn is_indexed(&self, v: NodeId) -> bool {
        self.tables[self.component_of(v) as usize].is_some()
    }

    /// Distance lookup; O(1) for tabulated components.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> DistanceLookup {
        let c = self.labels.component_of(a);
        if c != self.labels.component_of(b) {
            return DistanceLookup::DifferentComponents;
        }
        match &self.tables[c as usize] {
            Some(t) => {
                let (i, j) = (
                    self.rank[a as usize] as usize,
                    self.rank[b as usize] as usize,
                );
                DistanceLookup::Known(u32::from(t.d[i * t.k + j]))
            }
            None => DistanceLookup::NotIndexed,
        }
    }

    /// Distances from `v` to every member of its component, in member-slice
    /// order — the precomputed equivalent of one full BFS. `None` when the
    /// component is over the table budget.
    #[inline]
    pub fn row(&self, v: NodeId) -> Option<&[u16]> {
        let c = self.labels.component_of(v) as usize;
        self.tables[c].as_ref().map(|t| {
            let i = self.rank[v as usize] as usize;
            &t.d[i * t.k..(i + 1) * t.k]
        })
    }

    /// Total tabulated entries across all components (diagnostics).
    pub fn table_entries(&self) -> usize {
        self.tables.iter().flatten().map(|t| t.d.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;

    fn two_components() -> Graph {
        // Path 0-1-2-3 and triangle 4-5-6; node 7 isolated.
        let mut b = GraphBuilder::new(8);
        b.edges([(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (4, 6)]);
        b.build()
    }

    #[test]
    fn membership_is_interned_and_sorted() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_components(), 3);
        assert_eq!(cd.members_of(2), &[0, 1, 2, 3]);
        assert_eq!(cd.members_of(6), &[4, 5, 6]);
        assert_eq!(cd.members_of(7), &[7]);
        for v in 0..8u32 {
            let slice = cd.members_of(v);
            assert_eq!(slice[cd.rank(v) as usize], v);
        }
    }

    #[test]
    fn distances_match_fresh_bfs() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        for a in 0..8u32 {
            let fresh = bfs::bfs_distances(&g, a);
            for b in 0..8u32 {
                match cd.distance(a, b) {
                    DistanceLookup::Known(d) => assert_eq!(d, fresh[b as usize]),
                    DistanceLookup::DifferentComponents => {
                        assert_eq!(fresh[b as usize], bfs::INFINITE)
                    }
                    DistanceLookup::NotIndexed => panic!("small graph must be indexed"),
                }
            }
        }
    }

    #[test]
    fn rows_cover_components() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        let row = cd.row(1).unwrap();
        assert_eq!(row, &[1, 0, 1, 2]);
        assert_eq!(cd.row(7).unwrap(), &[0]);
    }

    #[test]
    fn over_budget_components_fall_back() {
        let g = generators::complete(10);
        let cd = ComponentDistances::with_budget(&g, 50); // 10² = 100 > 50
        assert!(!cd.is_indexed(0));
        assert_eq!(cd.distance(0, 5), DistanceLookup::NotIndexed);
        assert!(cd.row(0).is_none());
        // Membership interning still works.
        assert_eq!(cd.members_of(3).len(), 10);
        assert_eq!(cd.table_entries(), 0);
    }

    #[test]
    fn grid8_distance_is_chebyshev() {
        let (w, h) = (6, 5);
        let g = generators::grid8(w, h);
        let cd = ComponentDistances::new(&g);
        let id = |c: u32, r: u32| r * w + c;
        assert_eq!(cd.distance(id(0, 0), id(3, 2)), DistanceLookup::Known(3));
        assert_eq!(cd.distance(id(0, 0), id(5, 4)), DistanceLookup::Known(5));
        assert_eq!(cd.table_entries(), 30 * 30);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::empty(4);
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_components(), 4);
        for v in 0..4u32 {
            assert_eq!(cd.members_of(v), &[v]);
            assert_eq!(cd.distance(v, v), DistanceLookup::Known(0));
        }
        assert_eq!(cd.distance(0, 1), DistanceLookup::DifferentComponents);
    }
}
