//! Lazy per-component distance indexes: dense tables + hub-label oracle.
//!
//! Every PGLP mechanism call needs `d_G(s, z)` for all `z` in the component
//! of `s` (Def. 2.2), and the seed implementation re-ran a BFS on every
//! query. This module computes those distances **once per component, on
//! first touch**: component membership is interned eagerly (one cheap
//! labelling pass at construction), while each component's index is built
//! lazily behind a [`OnceLock`] the first time a query lands in it.
//! Transient policies (per-epoch timeline repair, refused assignments,
//! random-policy sweeps) therefore never pay index construction for
//! components they never query, while long-lived policies converge to the
//! fully-indexed state after a warm-up touch per component (or one
//! [`ComponentDistances::prebuild`] call).
//!
//! Two backends, auto-selected per component by size:
//!
//! * **Dense** (`k² ≤ max_table_entries`, i.e. ≤ 4096 nodes at the default
//!   budget): a `k × k` table of `u16` hop counts; `distance()` is one load
//!   and [`ComponentDistances::row`] is a slice borrow.
//! * **Hub labels** (larger components): the exact 2-hop oracle of
//!   [`crate::oracle`]. `distance()` is a label merge-join and full rows
//!   materialise via [`ComponentDistances::row_into`] — city-scale
//!   components (50k+ nodes) index in seconds and a few hundred megabytes
//!   where a dense table would need gigabytes.
//!
//! Components where *both* backends decline (label budget exhausted on
//! degenerate topologies, or `k > 65535`) stay unindexed; callers fall back
//! to on-demand BFS for those, so pathological policies degrade to the seed
//! behaviour instead of exhausting memory.

use crate::bfs;
use crate::components::{connected_components, ComponentLabels};
use crate::graph::{Graph, NodeId};
use crate::oracle::HubLabels;
use std::sync::OnceLock;

/// Default per-component dense-table budget: 16 Mi entries (32 MiB of
/// `u16`), i.e. components of up to 4096 nodes are fully tabulated.
pub const DEFAULT_MAX_TABLE_ENTRIES: usize = 1 << 24;

/// Default hub-label budget, as *average entries per member*: a component
/// of `k` nodes may spend `k × 512` label entries before construction
/// aborts. Grid-like city graphs come in far below this (≈ 100–200 at 50k
/// nodes); the cap exists to stop degenerate topologies (clique-like
/// components have Θ(n²) 2-hop covers) from silently re-growing the dense
/// footprint under a different name.
pub const DEFAULT_ORACLE_ENTRIES_PER_NODE: usize = 512;

/// Result of a distance lookup in [`ComponentDistances`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceLookup {
    /// The nodes are in different components (`d_G = ∞`).
    DifferentComponents,
    /// Indexed distance (dense table or hub labels).
    Known(u32),
    /// Same component, but the component exceeds every index budget; the
    /// caller must BFS.
    NotIndexed,
}

/// Which index backend serves a component (diagnostics / bench reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexBackend {
    /// Dense `k × k` table.
    Dense,
    /// 2-hop hub labels ([`crate::oracle::HubLabels`]).
    HubLabels,
    /// Over every budget; queries fall back to BFS.
    Unindexed,
}

/// Dense distance table of one component: `d[i * k + j]` is the hop count
/// between the `i`-th and `j`-th member (member order = sorted node id).
#[derive(Debug, Clone)]
struct DistanceTable {
    k: usize,
    d: Vec<u16>,
}

/// The per-component index: dense below the table budget, hub labels above.
#[derive(Debug, Clone)]
enum ComponentIndex {
    Dense(DistanceTable),
    Hub(HubLabels),
}

/// Interned component membership plus lazily-built per-component distance
/// indexes.
///
/// Construction costs one component-labelling pass (`O(V + E)`). The first
/// query into a component builds its index — one BFS per member for dense
/// tables, one *pruned* BFS per member for hub labels — after which
/// [`ComponentDistances::distance`] is a table load or label merge and
/// [`ComponentDistances::members_of`] is a slice borrow. The lazy build is
/// thread-safe (`OnceLock` per component): concurrent first touches build
/// once and share the result.
#[derive(Debug, Clone)]
pub struct ComponentDistances {
    /// The graph the indexes are built over (owned so they can be built
    /// lazily after construction).
    graph: Graph,
    labels: ComponentLabels,
    /// `members[offsets[c]..offsets[c + 1]]` are the sorted nodes of
    /// component `c`.
    offsets: Vec<u32>,
    members: Vec<NodeId>,
    /// `rank[v]` is the position of `v` within its component slice.
    rank: Vec<u32>,
    /// Indexed by component id; built on first touch. The inner `Option`
    /// is `None` for components over every budget. On `clone`,
    /// already-built indexes carry over; unbuilt ones stay lazy.
    tables: Vec<OnceLock<Option<ComponentIndex>>>,
    max_table_entries: usize,
    /// Hub-label budget in average entries per member (`0` disables the
    /// oracle backend entirely).
    oracle_entries_per_node: usize,
}

impl ComponentDistances {
    /// Interns components of `g` with the default budgets (the graph is
    /// cloned; prefer [`ComponentDistances::from_graph`] when an owned
    /// graph is at hand).
    pub fn new(g: &Graph) -> Self {
        Self::from_graph(g.clone(), DEFAULT_MAX_TABLE_ENTRIES)
    }

    /// Interns components of `g`, dense-tabulating (lazily) only components
    /// with at most `max_table_entries` (= k²) table cells; larger ones get
    /// hub labels under the default oracle budget.
    pub fn with_budget(g: &Graph, max_table_entries: usize) -> Self {
        Self::from_graph(g.clone(), max_table_entries)
    }

    /// Interns components of `g` with explicit budgets for both backends.
    /// `oracle_entries_per_node = 0` disables hub labels, restoring the
    /// pre-oracle behaviour (over-table-budget components stay unindexed).
    pub fn with_budgets(
        g: &Graph,
        max_table_entries: usize,
        oracle_entries_per_node: usize,
    ) -> Self {
        Self::from_graph_with_budgets(g.clone(), max_table_entries, oracle_entries_per_node)
    }

    /// Takes ownership of `g` and interns its components with explicit
    /// budgets for both backends (see [`ComponentDistances::with_budgets`]).
    pub fn from_graph_with_budgets(
        g: Graph,
        max_table_entries: usize,
        oracle_entries_per_node: usize,
    ) -> Self {
        let mut cd = Self::from_graph(g, max_table_entries);
        cd.oracle_entries_per_node = oracle_entries_per_node;
        cd
    }

    /// Takes ownership of `g` and interns its components. No BFS runs here;
    /// distance indexes are built on first touch.
    pub fn from_graph(g: Graph, max_table_entries: usize) -> Self {
        let labels = connected_components(&g);
        let n = g.n_nodes() as usize;
        let n_comp = labels.n_components as usize;

        // Intern membership: counting sort by component label.
        let mut counts = vec![0u32; n_comp];
        for &l in &labels.label {
            counts[l as usize] += 1;
        }
        let mut offsets = vec![0u32; n_comp + 1];
        for c in 0..n_comp {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut members = vec![0 as NodeId; n];
        let mut rank = vec![0u32; n];
        let mut cursor = offsets.clone();
        // Node ids ascend, so each component slice comes out sorted.
        for v in 0..n as u32 {
            let c = labels.label[v as usize] as usize;
            let pos = cursor[c];
            members[pos as usize] = v;
            rank[v as usize] = pos - offsets[c];
            cursor[c] += 1;
        }

        let mut tables = Vec::with_capacity(n_comp);
        tables.resize_with(n_comp, OnceLock::new);
        ComponentDistances {
            graph: g,
            labels,
            offsets,
            members,
            rank,
            tables,
            max_table_entries,
            oracle_entries_per_node: DEFAULT_ORACLE_ENTRIES_PER_NODE,
        }
    }

    /// The graph the distances are defined over.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The component decomposition the indexes are built over.
    #[inline]
    pub fn labels(&self) -> &ComponentLabels {
        &self.labels
    }

    /// Number of components.
    #[inline]
    pub fn n_components(&self) -> u32 {
        self.labels.n_components
    }

    /// Component id of `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.labels.component_of(v)
    }

    /// `true` when `a` and `b` share a component.
    #[inline]
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.labels.same_component(a, b)
    }

    /// The sorted members of component `c`, as an interned slice — no
    /// allocation, unlike [`ComponentLabels::members`].
    #[inline]
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.members[self.offsets[c as usize] as usize..self.offsets[c as usize + 1] as usize]
    }

    /// The sorted members of the component containing `v`.
    #[inline]
    pub fn members_of(&self, v: NodeId) -> &[NodeId] {
        self.members(self.component_of(v))
    }

    /// Position of `v` within [`ComponentDistances::members_of`]`(v)`.
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// `true` when the component of `v` fits the dense-table budget (its
    /// table is either built already or will be built on first touch).
    /// Oracle-backed components report `false` here — use
    /// [`ComponentDistances::backend`] for the full picture. Does not force
    /// a build.
    #[inline]
    pub fn is_indexed(&self, v: NodeId) -> bool {
        self.fits_budget(self.component_of(v) as usize)
    }

    /// Whether component `c`'s dense table fits the entry budget and the
    /// `u16` storage width — a component of k nodes has eccentricity < k,
    /// so k ≤ 65535 guarantees distances fit.
    #[inline]
    fn fits_budget(&self, c: usize) -> bool {
        let k = (self.offsets[c + 1] - self.offsets[c]) as usize;
        k.saturating_mul(k) <= self.max_table_entries && k <= usize::from(u16::MAX)
    }

    /// The (lazily built) index of component `c`; `None` when over every
    /// budget.
    fn index(&self, c: usize) -> Option<&ComponentIndex> {
        self.tables[c].get_or_init(|| self.build_index(c)).as_ref()
    }

    /// Builds the best index that fits component `c`'s budgets: dense table
    /// first, hub labels above the table budget, `None` when both decline.
    fn build_index(&self, c: usize) -> Option<ComponentIndex> {
        if self.fits_budget(c) {
            return self.build_table(c).map(ComponentIndex::Dense);
        }
        let slice = self.members(c as u32);
        let budget = slice.len().saturating_mul(self.oracle_entries_per_node);
        if budget == 0 {
            return None;
        }
        HubLabels::build(&self.graph, slice, budget).map(ComponentIndex::Hub)
    }

    /// One BFS per member of component `c`, filling the dense table.
    fn build_table(&self, c: usize) -> Option<DistanceTable> {
        if !self.fits_budget(c) {
            return None;
        }
        let slice = self.members(c as u32);
        let k = slice.len();
        if k == 1 {
            // Singleton: d(v, v) = 0, no BFS needed.
            return Some(DistanceTable { k: 1, d: vec![0] });
        }
        let mut scratch = vec![bfs::INFINITE; self.graph.n_nodes() as usize];
        let mut queue = std::collections::VecDeque::new();
        let mut d = vec![0u16; k * k];
        for (i, &src) in slice.iter().enumerate() {
            // BFS from src; only nodes of this component are reachable.
            scratch[src as usize] = 0;
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                let dv = scratch[v as usize];
                for &w in self.graph.neighbors(v) {
                    if scratch[w as usize] == bfs::INFINITE {
                        scratch[w as usize] = dv + 1;
                        queue.push_back(w);
                    }
                }
            }
            for (j, &dst) in slice.iter().enumerate() {
                debug_assert_ne!(scratch[dst as usize], bfs::INFINITE);
                // Cannot truncate: eccentricity < k ≤ u16::MAX (budget
                // check), so every in-component distance fits.
                debug_assert!(scratch[dst as usize] <= u32::from(u16::MAX));
                d[i * k + j] = scratch[dst as usize] as u16;
            }
            // Reset only the touched entries.
            for &v in slice {
                scratch[v as usize] = bfs::INFINITE;
            }
        }
        Some(DistanceTable { k, d })
    }

    /// Forces the build of every within-budget index (the eager,
    /// pre-refactor behaviour). Useful before latency-sensitive phases and
    /// in benchmarks separating build cost from query cost.
    pub fn prebuild(&self) {
        for c in 0..self.tables.len() {
            let _ = self.index(c);
        }
    }

    /// Distance lookup; O(1) for dense components, one label merge-join
    /// for oracle-backed ones (first touch of a component builds its
    /// index).
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> DistanceLookup {
        let c = self.labels.component_of(a);
        if c != self.labels.component_of(b) {
            return DistanceLookup::DifferentComponents;
        }
        match self.index(c as usize) {
            Some(ComponentIndex::Dense(t)) => {
                let (i, j) = (
                    self.rank[a as usize] as usize,
                    self.rank[b as usize] as usize,
                );
                DistanceLookup::Known(u32::from(t.d[i * t.k + j]))
            }
            Some(ComponentIndex::Hub(h)) => {
                DistanceLookup::Known(h.distance(self.rank[a as usize], self.rank[b as usize]))
            }
            None => DistanceLookup::NotIndexed,
        }
    }

    /// Distances from `v` to every member of its component, in member-slice
    /// order, as a **borrowed** slice — dense components only. Oracle-backed
    /// components return `None` here because their rows are materialised,
    /// not stored; use [`ComponentDistances::row_into`] to cover both
    /// backends.
    #[inline]
    pub fn row(&self, v: NodeId) -> Option<&[u16]> {
        let c = self.labels.component_of(v) as usize;
        match self.index(c) {
            Some(ComponentIndex::Dense(t)) => {
                let i = self.rank[v as usize] as usize;
                Some(&t.d[i * t.k..(i + 1) * t.k])
            }
            _ => None,
        }
    }

    /// Fills `out` with the distances from `v` to every member of its
    /// component, in member-slice order, resizing `out` to the component
    /// size. Serves **both** backends: a `memcpy` of the dense row, or one
    /// inverted-index join over the hub labels. Returns `false` (leaving
    /// `out` empty) when the component is over every budget — the caller
    /// falls back to BFS.
    pub fn row_into(&self, v: NodeId, out: &mut Vec<u16>) -> bool {
        let c = self.labels.component_of(v) as usize;
        match self.index(c) {
            Some(ComponentIndex::Dense(t)) => {
                let i = self.rank[v as usize] as usize;
                out.clear();
                out.extend_from_slice(&t.d[i * t.k..(i + 1) * t.k]);
                true
            }
            Some(ComponentIndex::Hub(h)) => {
                out.resize(h.len(), 0);
                h.row_into(self.rank[v as usize], out);
                true
            }
            None => {
                out.clear();
                false
            }
        }
    }

    /// Which backend indexes the component of `v`. Forces the lazy build
    /// (the answer for oracle-size components is unknowable without
    /// attempting construction — the label budget may abort).
    pub fn backend(&self, v: NodeId) -> IndexBackend {
        match self.index(self.labels.component_of(v) as usize) {
            Some(ComponentIndex::Dense(_)) => IndexBackend::Dense,
            Some(ComponentIndex::Hub(_)) => IndexBackend::HubLabels,
            None => IndexBackend::Unindexed,
        }
    }

    /// The hub labels backing `v`'s component, when that component is
    /// oracle-indexed (forces the lazy build). For bench/diagnostic label
    /// statistics.
    pub fn hub_labels_of(&self, v: NodeId) -> Option<&HubLabels> {
        match self.index(self.labels.component_of(v) as usize) {
            Some(ComponentIndex::Hub(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of component indexes built so far (diagnostics; lazy-build
    /// observability).
    pub fn n_built_tables(&self) -> usize {
        self.tables
            .iter()
            .filter(|t| t.get().is_some_and(|o| o.is_some()))
            .count()
    }

    /// Total indexed entries across all *built* components: dense cells
    /// plus hub-label entries (diagnostics).
    pub fn table_entries(&self) -> usize {
        self.tables
            .iter()
            .filter_map(|t| t.get().and_then(|o| o.as_ref()))
            .map(|t| match t {
                ComponentIndex::Dense(t) => t.d.len(),
                ComponentIndex::Hub(h) => h.n_entries(),
            })
            .sum()
    }

    /// Heap bytes of the index structures: interned membership plus every
    /// *built* per-component index (dense cells at 2 bytes, hub labels via
    /// [`HubLabels::memory_bytes`]). Excludes the owned graph itself.
    pub fn memory_bytes(&self) -> usize {
        let membership = self.offsets.len() * std::mem::size_of::<u32>()
            + self.members.len() * std::mem::size_of::<NodeId>()
            + self.rank.len() * std::mem::size_of::<u32>()
            + self.labels.label.len() * std::mem::size_of::<u32>();
        let indexes: usize = self
            .tables
            .iter()
            .filter_map(|t| t.get().and_then(|o| o.as_ref()))
            .map(|t| match t {
                ComponentIndex::Dense(t) => t.d.len() * std::mem::size_of::<u16>(),
                ComponentIndex::Hub(h) => h.memory_bytes(),
            })
            .sum();
        membership + indexes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;

    fn two_components() -> Graph {
        // Path 0-1-2-3 and triangle 4-5-6; node 7 isolated.
        let mut b = GraphBuilder::new(8);
        b.edges([(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (4, 6)]);
        b.build()
    }

    #[test]
    fn membership_is_interned_and_sorted() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_components(), 3);
        assert_eq!(cd.members_of(2), &[0, 1, 2, 3]);
        assert_eq!(cd.members_of(6), &[4, 5, 6]);
        assert_eq!(cd.members_of(7), &[7]);
        for v in 0..8u32 {
            let slice = cd.members_of(v);
            assert_eq!(slice[cd.rank(v) as usize], v);
        }
    }

    #[test]
    fn distances_match_fresh_bfs() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        for a in 0..8u32 {
            let fresh = bfs::bfs_distances(&g, a);
            for b in 0..8u32 {
                match cd.distance(a, b) {
                    DistanceLookup::Known(d) => assert_eq!(d, fresh[b as usize]),
                    DistanceLookup::DifferentComponents => {
                        assert_eq!(fresh[b as usize], bfs::INFINITE)
                    }
                    DistanceLookup::NotIndexed => panic!("small graph must be indexed"),
                }
            }
        }
    }

    #[test]
    fn tables_build_lazily_on_first_touch() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_built_tables(), 0, "construction must not BFS");
        assert_eq!(cd.table_entries(), 0);
        // Touching one component builds exactly that component's table.
        assert_eq!(cd.distance(0, 3), DistanceLookup::Known(3));
        assert_eq!(cd.n_built_tables(), 1);
        assert_eq!(cd.table_entries(), 16);
        // Untouched components stay lazy.
        assert_eq!(cd.row(4).unwrap(), &[0, 1, 1]);
        assert_eq!(cd.n_built_tables(), 2);
    }

    #[test]
    fn lazy_equals_prebuilt_eager() {
        let g = generators::grid8(7, 5);
        let lazy = ComponentDistances::new(&g);
        let eager = ComponentDistances::new(&g);
        eager.prebuild();
        assert_eq!(eager.n_built_tables(), 1);
        for a in 0..g.n_nodes() {
            for b in 0..g.n_nodes() {
                assert_eq!(lazy.distance(a, b), eager.distance(a, b));
            }
            assert_eq!(lazy.row(a), eager.row(a));
        }
    }

    #[test]
    fn rows_cover_components() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        let row = cd.row(1).unwrap();
        assert_eq!(row, &[1, 0, 1, 2]);
        assert_eq!(cd.row(7).unwrap(), &[0]);
    }

    #[test]
    fn over_budget_components_go_to_hub_labels() {
        // 10² = 100 > 50: too big for a dense table, but the oracle picks
        // it up and distance queries stay exact.
        let g = generators::cycle(10);
        let cd = ComponentDistances::with_budget(&g, 50);
        assert!(!cd.is_indexed(0), "dense budget must be exceeded");
        assert_eq!(cd.distance(0, 5), DistanceLookup::Known(5));
        assert_eq!(cd.backend(0), IndexBackend::HubLabels);
        // Borrowed rows are a dense-only affordance...
        assert!(cd.row(0).is_none());
        // ... but materialised rows work.
        let mut row = Vec::new();
        assert!(cd.row_into(2, &mut row));
        assert_eq!(row.len(), 10);
        assert_eq!(row[2], 0);
        assert_eq!(row[7], 5);
        assert!(cd.hub_labels_of(0).is_some());
    }

    #[test]
    fn oracle_disabled_restores_bfs_fallback() {
        let g = generators::complete(10);
        let cd = ComponentDistances::with_budgets(&g, 50, 0);
        assert!(!cd.is_indexed(0));
        assert_eq!(cd.distance(0, 5), DistanceLookup::NotIndexed);
        assert_eq!(cd.backend(0), IndexBackend::Unindexed);
        assert!(cd.row(0).is_none());
        let mut row = Vec::new();
        assert!(!cd.row_into(0, &mut row));
        assert!(row.is_empty());
        // Membership interning still works.
        assert_eq!(cd.members_of(3).len(), 10);
        assert_eq!(cd.table_entries(), 0);
        // prebuild skips over-budget components.
        cd.prebuild();
        assert_eq!(cd.n_built_tables(), 0);
    }

    #[test]
    fn degenerate_topology_exhausts_label_budget() {
        // Cliques have Θ(n²) 2-hop covers; with an average label budget of
        // 2 entries per node the oracle must abort and leave the component
        // unindexed (seed behaviour).
        let g = generators::complete(12);
        let cd = ComponentDistances::with_budgets(&g, 100, 2);
        assert_eq!(cd.distance(0, 5), DistanceLookup::NotIndexed);
        assert_eq!(cd.backend(0), IndexBackend::Unindexed);
    }

    #[test]
    fn hub_rows_match_dense_rows() {
        // Same graph indexed both ways: member-order rows must be
        // identical (this equality is what keeps oracle-backed sampling
        // tables byte-identical to dense-backed ones).
        let g = generators::grid8(9, 7);
        let dense = ComponentDistances::new(&g);
        let hub = ComponentDistances::with_budget(&g, 1); // force oracle
        assert_eq!(hub.backend(0), IndexBackend::HubLabels);
        let mut dense_row = Vec::new();
        let mut hub_row = Vec::new();
        for v in 0..g.n_nodes() {
            assert!(dense.row_into(v, &mut dense_row));
            assert!(hub.row_into(v, &mut hub_row));
            assert_eq!(dense_row, hub_row);
            assert_eq!(dense.distance(0, v), hub.distance(0, v));
        }
    }

    #[test]
    fn grid8_distance_is_chebyshev() {
        let (w, h) = (6, 5);
        let g = generators::grid8(w, h);
        let cd = ComponentDistances::new(&g);
        let id = |c: u32, r: u32| r * w + c;
        assert_eq!(cd.distance(id(0, 0), id(3, 2)), DistanceLookup::Known(3));
        assert_eq!(cd.distance(id(0, 0), id(5, 4)), DistanceLookup::Known(5));
        assert_eq!(cd.table_entries(), 30 * 30);
    }

    #[test]
    fn clone_carries_built_tables() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.distance(0, 2), DistanceLookup::Known(2));
        let cloned = cd.clone();
        assert_eq!(cloned.n_built_tables(), 1, "built tables survive clone");
        assert_eq!(cloned.distance(0, 2), DistanceLookup::Known(2));
    }

    #[test]
    fn concurrent_first_touch_builds_once() {
        let g = generators::grid8(16, 16);
        let n = g.n_nodes();
        let cd = ComponentDistances::new(&g);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cd = &cd;
                s.spawn(move || {
                    for v in 0..n {
                        assert!(matches!(cd.distance(t, v), DistanceLookup::Known(_)));
                    }
                });
            }
        });
        assert_eq!(cd.n_built_tables(), 1);
        assert_eq!(cd.table_entries(), 256 * 256);
    }

    #[test]
    fn memory_bytes_tracks_built_state() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        let base = cd.memory_bytes();
        assert!(base > 0, "membership interning is always accounted");
        cd.prebuild();
        // 4² + 3² + 1² dense cells at 2 bytes each.
        assert_eq!(cd.memory_bytes(), base + 2 * (16 + 9 + 1));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::empty(4);
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_components(), 4);
        for v in 0..4u32 {
            assert_eq!(cd.members_of(v), &[v]);
            assert_eq!(cd.distance(v, v), DistanceLookup::Known(0));
        }
        assert_eq!(cd.distance(0, 1), DistanceLookup::DifferentComponents);
    }
}
