//! Lazy per-component all-pairs distance tables.
//!
//! Every PGLP mechanism call needs `d_G(s, z)` for all `z` in the component
//! of `s` (Def. 2.2), and the seed implementation re-ran a BFS on every
//! query. This module computes those distances **once per component, on
//! first touch**: component membership is interned eagerly (one cheap
//! labelling pass at construction), but each component's dense `k × k`
//! table of `u16` hop counts is built lazily behind a [`OnceLock`] the
//! first time a `distance()`/`row()` query lands in it. Transient policies
//! (per-epoch timeline repair, refused assignments, random-policy sweeps)
//! therefore no longer pay the all-pairs BFS tax for components they never
//! query, while long-lived policies converge to the fully-tabulated state
//! after a warm-up touch per component (or one [`ComponentDistances::prebuild`]
//! call).
//!
//! Components whose table would exceed a size budget (quadratic memory!)
//! are never tabulated; callers fall back to on-demand BFS for those, so
//! huge policies degrade to the seed behaviour instead of exhausting memory.

use crate::bfs;
use crate::components::{connected_components, ComponentLabels};
use crate::graph::{Graph, NodeId};
use std::sync::OnceLock;

/// Default per-component table budget: 16 Mi entries (32 MiB of `u16`),
/// i.e. components of up to 4096 nodes are fully tabulated.
pub const DEFAULT_MAX_TABLE_ENTRIES: usize = 1 << 24;

/// Result of a distance lookup in [`ComponentDistances`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceLookup {
    /// The nodes are in different components (`d_G = ∞`).
    DifferentComponents,
    /// Tabulated distance.
    Known(u32),
    /// Same component, but the component exceeds the table budget; the
    /// caller must BFS.
    NotIndexed,
}

/// Dense distance table of one component: `d[i * k + j]` is the hop count
/// between the `i`-th and `j`-th member (member order = sorted node id).
#[derive(Debug, Clone)]
struct DistanceTable {
    k: usize,
    d: Vec<u16>,
}

/// Interned component membership plus lazily-built per-component all-pairs
/// distances.
///
/// Construction costs one component-labelling pass (`O(V + E)`). The first
/// query into a component runs one BFS per member of that component —
/// `O(k·(V_C + E_C))` — after which [`ComponentDistances::distance`] is a
/// table lookup and [`ComponentDistances::members_of`] is a slice borrow.
/// The lazy build is thread-safe (`OnceLock` per component): concurrent
/// first touches build once and share the result.
#[derive(Debug, Clone)]
pub struct ComponentDistances {
    /// The graph the tables are built over (owned so tables can be built
    /// lazily after construction).
    graph: Graph,
    labels: ComponentLabels,
    /// `members[offsets[c]..offsets[c + 1]]` are the sorted nodes of
    /// component `c`.
    offsets: Vec<u32>,
    members: Vec<NodeId>,
    /// `rank[v]` is the position of `v` within its component slice.
    rank: Vec<u32>,
    /// Indexed by component id; built on first touch. The inner `Option`
    /// is `None` for components over the size budget. On `clone`,
    /// already-built tables carry over; unbuilt ones stay lazy.
    tables: Vec<OnceLock<Option<DistanceTable>>>,
    max_table_entries: usize,
}

impl ComponentDistances {
    /// Interns components of `g` with the default table budget (the graph
    /// is cloned; prefer [`ComponentDistances::from_graph`] when an owned
    /// graph is at hand).
    pub fn new(g: &Graph) -> Self {
        Self::from_graph(g.clone(), DEFAULT_MAX_TABLE_ENTRIES)
    }

    /// Interns components of `g`, tabulating (lazily) only components with
    /// at most `max_table_entries` (= k²) table cells.
    pub fn with_budget(g: &Graph, max_table_entries: usize) -> Self {
        Self::from_graph(g.clone(), max_table_entries)
    }

    /// Takes ownership of `g` and interns its components. No BFS runs here;
    /// distance tables are built on first touch.
    pub fn from_graph(g: Graph, max_table_entries: usize) -> Self {
        let labels = connected_components(&g);
        let n = g.n_nodes() as usize;
        let n_comp = labels.n_components as usize;

        // Intern membership: counting sort by component label.
        let mut counts = vec![0u32; n_comp];
        for &l in &labels.label {
            counts[l as usize] += 1;
        }
        let mut offsets = vec![0u32; n_comp + 1];
        for c in 0..n_comp {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut members = vec![0 as NodeId; n];
        let mut rank = vec![0u32; n];
        let mut cursor = offsets.clone();
        // Node ids ascend, so each component slice comes out sorted.
        for v in 0..n as u32 {
            let c = labels.label[v as usize] as usize;
            let pos = cursor[c];
            members[pos as usize] = v;
            rank[v as usize] = pos - offsets[c];
            cursor[c] += 1;
        }

        let mut tables = Vec::with_capacity(n_comp);
        tables.resize_with(n_comp, OnceLock::new);
        ComponentDistances {
            graph: g,
            labels,
            offsets,
            members,
            rank,
            tables,
            max_table_entries,
        }
    }

    /// The graph the distances are defined over.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The component decomposition the tables are built over.
    #[inline]
    pub fn labels(&self) -> &ComponentLabels {
        &self.labels
    }

    /// Number of components.
    #[inline]
    pub fn n_components(&self) -> u32 {
        self.labels.n_components
    }

    /// Component id of `v`.
    #[inline]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.labels.component_of(v)
    }

    /// `true` when `a` and `b` share a component.
    #[inline]
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.labels.same_component(a, b)
    }

    /// The sorted members of component `c`, as an interned slice — no
    /// allocation, unlike [`ComponentLabels::members`].
    #[inline]
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.members[self.offsets[c as usize] as usize..self.offsets[c as usize + 1] as usize]
    }

    /// The sorted members of the component containing `v`.
    #[inline]
    pub fn members_of(&self, v: NodeId) -> &[NodeId] {
        self.members(self.component_of(v))
    }

    /// Position of `v` within [`ComponentDistances::members_of`]`(v)`.
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// `true` when the component of `v` fits the table budget (its table is
    /// either built already or will be built on first touch). Does not
    /// force a build.
    #[inline]
    pub fn is_indexed(&self, v: NodeId) -> bool {
        self.fits_budget(self.component_of(v) as usize)
    }

    /// Whether component `c`'s table fits the entry budget and the `u16`
    /// storage width — a component of k nodes has eccentricity < k, so
    /// k ≤ 65535 guarantees distances fit.
    #[inline]
    fn fits_budget(&self, c: usize) -> bool {
        let k = (self.offsets[c + 1] - self.offsets[c]) as usize;
        k.saturating_mul(k) <= self.max_table_entries && k <= usize::from(u16::MAX)
    }

    /// The (lazily built) table of component `c`; `None` when over budget.
    fn table(&self, c: usize) -> Option<&DistanceTable> {
        self.tables[c].get_or_init(|| self.build_table(c)).as_ref()
    }

    /// One BFS per member of component `c`, filling the dense table.
    fn build_table(&self, c: usize) -> Option<DistanceTable> {
        if !self.fits_budget(c) {
            return None;
        }
        let slice = self.members(c as u32);
        let k = slice.len();
        if k == 1 {
            // Singleton: d(v, v) = 0, no BFS needed.
            return Some(DistanceTable { k: 1, d: vec![0] });
        }
        let mut scratch = vec![bfs::INFINITE; self.graph.n_nodes() as usize];
        let mut queue = std::collections::VecDeque::new();
        let mut d = vec![0u16; k * k];
        for (i, &src) in slice.iter().enumerate() {
            // BFS from src; only nodes of this component are reachable.
            scratch[src as usize] = 0;
            queue.push_back(src);
            while let Some(v) = queue.pop_front() {
                let dv = scratch[v as usize];
                for &w in self.graph.neighbors(v) {
                    if scratch[w as usize] == bfs::INFINITE {
                        scratch[w as usize] = dv + 1;
                        queue.push_back(w);
                    }
                }
            }
            for (j, &dst) in slice.iter().enumerate() {
                debug_assert_ne!(scratch[dst as usize], bfs::INFINITE);
                // Cannot truncate: eccentricity < k ≤ u16::MAX (budget
                // check), so every in-component distance fits.
                debug_assert!(scratch[dst as usize] <= u32::from(u16::MAX));
                d[i * k + j] = scratch[dst as usize] as u16;
            }
            // Reset only the touched entries.
            for &v in slice {
                scratch[v as usize] = bfs::INFINITE;
            }
        }
        Some(DistanceTable { k, d })
    }

    /// Forces the build of every within-budget table (the eager,
    /// pre-refactor behaviour). Useful before latency-sensitive phases and
    /// in benchmarks separating build cost from query cost.
    pub fn prebuild(&self) {
        for c in 0..self.tables.len() {
            let _ = self.table(c);
        }
    }

    /// Distance lookup; O(1) for tabulated components (first touch of a
    /// component builds its table).
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> DistanceLookup {
        let c = self.labels.component_of(a);
        if c != self.labels.component_of(b) {
            return DistanceLookup::DifferentComponents;
        }
        match self.table(c as usize) {
            Some(t) => {
                let (i, j) = (
                    self.rank[a as usize] as usize,
                    self.rank[b as usize] as usize,
                );
                DistanceLookup::Known(u32::from(t.d[i * t.k + j]))
            }
            None => DistanceLookup::NotIndexed,
        }
    }

    /// Distances from `v` to every member of its component, in member-slice
    /// order — the precomputed equivalent of one full BFS. `None` when the
    /// component is over the table budget.
    #[inline]
    pub fn row(&self, v: NodeId) -> Option<&[u16]> {
        let c = self.labels.component_of(v) as usize;
        self.table(c).map(|t| {
            let i = self.rank[v as usize] as usize;
            &t.d[i * t.k..(i + 1) * t.k]
        })
    }

    /// Number of component tables built so far (diagnostics; lazy-build
    /// observability).
    pub fn n_built_tables(&self) -> usize {
        self.tables
            .iter()
            .filter(|t| t.get().is_some_and(|o| o.is_some()))
            .count()
    }

    /// Total tabulated entries across all *built* components (diagnostics).
    pub fn table_entries(&self) -> usize {
        self.tables
            .iter()
            .filter_map(|t| t.get().and_then(|o| o.as_ref()))
            .map(|t| t.d.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;

    fn two_components() -> Graph {
        // Path 0-1-2-3 and triangle 4-5-6; node 7 isolated.
        let mut b = GraphBuilder::new(8);
        b.edges([(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (4, 6)]);
        b.build()
    }

    #[test]
    fn membership_is_interned_and_sorted() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_components(), 3);
        assert_eq!(cd.members_of(2), &[0, 1, 2, 3]);
        assert_eq!(cd.members_of(6), &[4, 5, 6]);
        assert_eq!(cd.members_of(7), &[7]);
        for v in 0..8u32 {
            let slice = cd.members_of(v);
            assert_eq!(slice[cd.rank(v) as usize], v);
        }
    }

    #[test]
    fn distances_match_fresh_bfs() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        for a in 0..8u32 {
            let fresh = bfs::bfs_distances(&g, a);
            for b in 0..8u32 {
                match cd.distance(a, b) {
                    DistanceLookup::Known(d) => assert_eq!(d, fresh[b as usize]),
                    DistanceLookup::DifferentComponents => {
                        assert_eq!(fresh[b as usize], bfs::INFINITE)
                    }
                    DistanceLookup::NotIndexed => panic!("small graph must be indexed"),
                }
            }
        }
    }

    #[test]
    fn tables_build_lazily_on_first_touch() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_built_tables(), 0, "construction must not BFS");
        assert_eq!(cd.table_entries(), 0);
        // Touching one component builds exactly that component's table.
        assert_eq!(cd.distance(0, 3), DistanceLookup::Known(3));
        assert_eq!(cd.n_built_tables(), 1);
        assert_eq!(cd.table_entries(), 16);
        // Untouched components stay lazy.
        assert_eq!(cd.row(4).unwrap(), &[0, 1, 1]);
        assert_eq!(cd.n_built_tables(), 2);
    }

    #[test]
    fn lazy_equals_prebuilt_eager() {
        let g = generators::grid8(7, 5);
        let lazy = ComponentDistances::new(&g);
        let eager = ComponentDistances::new(&g);
        eager.prebuild();
        assert_eq!(eager.n_built_tables(), 1);
        for a in 0..g.n_nodes() {
            for b in 0..g.n_nodes() {
                assert_eq!(lazy.distance(a, b), eager.distance(a, b));
            }
            assert_eq!(lazy.row(a), eager.row(a));
        }
    }

    #[test]
    fn rows_cover_components() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        let row = cd.row(1).unwrap();
        assert_eq!(row, &[1, 0, 1, 2]);
        assert_eq!(cd.row(7).unwrap(), &[0]);
    }

    #[test]
    fn over_budget_components_fall_back() {
        let g = generators::complete(10);
        let cd = ComponentDistances::with_budget(&g, 50); // 10² = 100 > 50
        assert!(!cd.is_indexed(0));
        assert_eq!(cd.distance(0, 5), DistanceLookup::NotIndexed);
        assert!(cd.row(0).is_none());
        // Membership interning still works.
        assert_eq!(cd.members_of(3).len(), 10);
        assert_eq!(cd.table_entries(), 0);
        // prebuild skips over-budget components.
        cd.prebuild();
        assert_eq!(cd.n_built_tables(), 0);
    }

    #[test]
    fn grid8_distance_is_chebyshev() {
        let (w, h) = (6, 5);
        let g = generators::grid8(w, h);
        let cd = ComponentDistances::new(&g);
        let id = |c: u32, r: u32| r * w + c;
        assert_eq!(cd.distance(id(0, 0), id(3, 2)), DistanceLookup::Known(3));
        assert_eq!(cd.distance(id(0, 0), id(5, 4)), DistanceLookup::Known(5));
        assert_eq!(cd.table_entries(), 30 * 30);
    }

    #[test]
    fn clone_carries_built_tables() {
        let g = two_components();
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.distance(0, 2), DistanceLookup::Known(2));
        let cloned = cd.clone();
        assert_eq!(cloned.n_built_tables(), 1, "built tables survive clone");
        assert_eq!(cloned.distance(0, 2), DistanceLookup::Known(2));
    }

    #[test]
    fn concurrent_first_touch_builds_once() {
        let g = generators::grid8(16, 16);
        let n = g.n_nodes();
        let cd = ComponentDistances::new(&g);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cd = &cd;
                s.spawn(move || {
                    for v in 0..n {
                        assert!(matches!(cd.distance(t, v), DistanceLookup::Known(_)));
                    }
                });
            }
        });
        assert_eq!(cd.n_built_tables(), 1);
        assert_eq!(cd.table_entries(), 256 * 256);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = Graph::empty(4);
        let cd = ComponentDistances::new(&g);
        assert_eq!(cd.n_components(), 4);
        for v in 0..4u32 {
            assert_eq!(cd.members_of(v), &[v]);
            assert_eq!(cd.distance(v, v), DistanceLookup::Known(0));
        }
        assert_eq!(cd.distance(0, 1), DistanceLookup::DifferentComponents);
    }
}
