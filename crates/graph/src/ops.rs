//! Graph surgery: subgraphs, isolation, unions and edge edits.
//!
//! Dynamic policies (§3.2's contact-tracing flow) are *edits* of a base
//! policy graph: isolating infected locations (`Gc`), restricting to a
//! feasible subset of locations, or merging several users' policy updates.

use crate::graph::{Graph, GraphBuilder, NodeId};

/// The subgraph induced by `nodes`, together with the mapping from new
/// (dense) node ids back to the original ids.
///
/// `nodes` may be unsorted but must not contain duplicates (checked).
/// Returned mapping: `original_of[new_id] = old_id`.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut original_of: Vec<NodeId> = nodes.to_vec();
    original_of.sort_unstable();
    let before = original_of.len();
    original_of.dedup();
    assert_eq!(before, original_of.len(), "duplicate nodes in subset");

    let mut new_of = vec![u32::MAX; g.n_nodes() as usize];
    for (new_id, &old) in original_of.iter().enumerate() {
        assert!(old < g.n_nodes(), "subset node out of range");
        new_of[old as usize] = new_id as u32;
    }

    let mut b = GraphBuilder::new(original_of.len() as u32);
    for &old in &original_of {
        let a_new = new_of[old as usize];
        for &nbr in g.neighbors(old) {
            let b_new = new_of[nbr as usize];
            if b_new != u32::MAX && a_new < b_new {
                b.edge(a_new, b_new);
            }
        }
    }
    (b.build(), original_of)
}

/// Returns a copy of `g` with every node in `nodes` isolated (all incident
/// edges removed).
///
/// This is the contact-tracing policy transform: given a base policy and the
/// set of infected locations, `isolate_nodes` yields `Gc` — infected
/// locations may be disclosed exactly, everything else keeps its
/// indistinguishability (Fig. 4, right).
pub fn isolate_nodes(g: &Graph, nodes: &[NodeId]) -> Graph {
    let mut out = g.clone();
    for &v in nodes {
        out.isolate_node(v);
    }
    out
}

/// Edge-union of two graphs over the same node set.
///
/// # Panics
///
/// Panics when node counts differ.
pub fn union(a: &Graph, b: &Graph) -> Graph {
    assert_eq!(
        a.n_nodes(),
        b.n_nodes(),
        "graph union requires equal node sets"
    );
    let mut builder = GraphBuilder::new(a.n_nodes());
    builder.edges(a.edges());
    builder.edges(b.edges());
    builder.build()
}

/// Returns a copy of `g` with the given extra edges added.
pub fn with_edges(g: &Graph, extra: &[(NodeId, NodeId)]) -> Graph {
    let mut out = g.clone();
    for &(a, b) in extra {
        out.add_edge(a, b);
    }
    out
}

/// Returns a copy of `g` with the given edges removed (missing edges are
/// ignored).
pub fn without_edges(g: &Graph, remove: &[(NodeId, NodeId)]) -> Graph {
    let mut out = g.clone();
    for &(a, b) in remove {
        out.remove_edge(a, b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = generators::complete(5);
        let (sub, map) = induced_subgraph(&g, &[4, 0, 2]);
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(sub.n_edges(), 3); // triangle
        assert_eq!(map, vec![0, 2, 4]);
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        let g = generators::path(5); // 0-1-2-3-4
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.n_edges(), 1); // only 0-1 survives
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        let g = generators::path(3);
        induced_subgraph(&g, &[0, 0, 1]);
    }

    #[test]
    fn isolate_nodes_copy_semantics() {
        let g = generators::complete(4);
        let gc = isolate_nodes(&g, &[0, 2]);
        assert_eq!(g.n_edges(), 6, "original untouched");
        assert!(gc.is_isolated(0));
        assert!(gc.is_isolated(2));
        assert_eq!(gc.n_edges(), 1);
        assert!(gc.has_edge(1, 3));
    }

    #[test]
    fn union_of_path_halves() {
        let mut a = Graph::empty(4);
        a.add_edge(0, 1);
        let mut b = Graph::empty(4);
        b.add_edge(1, 2);
        b.add_edge(0, 1); // overlap deduplicated
        let u = union(&a, &b);
        assert_eq!(u.n_edges(), 2);
        assert!(u.has_edge(0, 1) && u.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "equal node sets")]
    fn union_size_mismatch_panics() {
        union(&Graph::empty(2), &Graph::empty(3));
    }

    #[test]
    fn with_and_without_edges() {
        let g = generators::path(4);
        let g2 = with_edges(&g, &[(0, 3)]);
        assert!(g2.has_edge(0, 3));
        let g3 = without_edges(&g2, &[(0, 3), (1, 2)]);
        assert!(!g3.has_edge(0, 3));
        assert!(!g3.has_edge(1, 2));
        assert!(g3.has_edge(0, 1));
    }
}
