//! Graph generators: the vocabulary of location policy graphs.
//!
//! Every policy the paper draws (Figs. 2 and 4) is built from these:
//!
//! * [`grid8`] — `G1`, each location adjacent to its eight closest map
//!   neighbours; PGLP over `G1` implies ε-Geo-Indistinguishability
//!   (Theorem 2.1).
//! * [`complete`] — `G2`, the complete graph over a δ-location set; PGLP
//!   over `G2` implies δ-Location Set Privacy (Theorem 2.2).
//! * [`partition_cliques`] — `Ga`/`Gb`, indistinguishability *within* each
//!   coarse area, none across (Fig. 4).
//! * [`erdos_renyi`] / [`random_with_density`] — the demo's "Random Policy
//!   Graph" generator with its *Size* and *Density* knobs (Fig. 5).

use crate::components::DisjointSets;
use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// 4-neighbour grid graph on `w × h` nodes (node id = `row·w + col`).
pub fn grid4(w: u32, h: u32) -> Graph {
    let mut b = GraphBuilder::new(w * h);
    for r in 0..h {
        for c in 0..w {
            let v = r * w + c;
            if c + 1 < w {
                b.edge(v, v + 1);
            }
            if r + 1 < h {
                b.edge(v, v + w);
            }
        }
    }
    b.build()
}

/// 8-neighbour grid graph on `w × h` nodes — the paper's `G1` (Fig. 2 left).
pub fn grid8(w: u32, h: u32) -> Graph {
    let mut b = GraphBuilder::new(w * h);
    for r in 0..h {
        for c in 0..w {
            let v = r * w + c;
            if c + 1 < w {
                b.edge(v, v + 1);
            }
            if r + 1 < h {
                b.edge(v, v + w);
                if c + 1 < w {
                    b.edge(v, v + w + 1); // diagonal ↘
                }
                if c > 0 {
                    b.edge(v, v + w - 1); // diagonal ↙
                }
            }
        }
    }
    b.build()
}

/// Complete graph on `n` nodes — the paper's `G2` over a δ-location set
/// (Fig. 2 right).
pub fn complete(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for a in 0..n {
        for c in (a + 1)..n {
            b.edge(a, c);
        }
    }
    b.build()
}

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(v - 1, v);
    }
    b.build()
}

/// Cycle graph on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics for `n < 3` (smaller cycles are not simple graphs).
pub fn cycle(n: u32) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(v - 1, v);
    }
    b.edge(n - 1, 0);
    b.build()
}

/// Star graph: node 0 adjacent to all others.
pub fn star(n: u32) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(0, v);
    }
    b.build()
}

/// Builds the union of cliques induced by a labelling: nodes with equal
/// label become mutually 1-neighbours; no edges cross labels.
///
/// This is exactly the `Ga`/`Gb` construction of Fig. 4: "ensuring
/// indistinguishability inside each coarse-grained area and allowing the
/// locations to be distinguishable in different coarse-grained areas".
pub fn partition_cliques(labels: &[u32]) -> Graph {
    let mut b = GraphBuilder::new(labels.len() as u32);
    // Group node ids by label.
    let mut groups: std::collections::BTreeMap<u32, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for (v, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(v as NodeId);
    }
    for members in groups.values() {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                b.edge(members[i], members[j]);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
pub fn erdos_renyi<R: Rng + ?Sized>(rng: &mut R, n: u32, p: f64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    for a in 0..n {
        for c in (a + 1)..n {
            if rng.gen_bool(p) {
                b.edge(a, c);
            }
        }
    }
    b.build()
}

/// Random graph with an **exact** number of edges: `⌊density · n(n−1)/2⌋`
/// distinct pairs chosen uniformly.
///
/// This mirrors the demo UI's Random Policy Graph panel, where the attendee
/// dials in *Size* (n) and *Density* directly (Fig. 5 shows Size 50,
/// Density 0.1).
pub fn random_with_density<R: Rng + ?Sized>(rng: &mut R, n: u32, density: f64) -> Graph {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let max_edges = (n as u64) * (n as u64 - 1) / 2;
    let m = ((density * max_edges as f64).floor() as u64).min(max_edges);
    // Enumerate all pairs and sample m of them; policy graphs are small
    // (demo sizes ≤ a few hundred), so materialising pairs is cheap.
    let mut pairs = Vec::with_capacity(max_edges as usize);
    for a in 0..n {
        for c in (a + 1)..n {
            pairs.push((a, c));
        }
    }
    pairs.shuffle(rng);
    let mut b = GraphBuilder::new(n);
    b.edges(pairs.into_iter().take(m as usize));
    b.build()
}

/// City-like policy graph: an 8-neighbour grid with random street closures
/// and a few long-range shortcuts, guaranteed connected.
///
/// Real city geographies are *almost* grids — rivers, parks and railway
/// cuts delete local adjacencies while bridges, tunnels and transit lines
/// add long links. This generator models that for large-component tests and
/// benches: starting from [`grid8`]`(w, h)`, a uniformly random spanning
/// tree of grid edges is kept undeletable (connectivity), every remaining
/// grid edge is deleted independently with probability `delete_p`, and
/// `shortcuts` uniformly random long-range node pairs are added.
///
/// Deterministic for a fixed `rng` stream; node ids follow the grid layout
/// (`row·w + col`), so the result drops into `GridMap`-backed policies
/// unchanged.
///
/// # Panics
///
/// Panics when the grid is empty or `delete_p` is not a probability.
pub fn city_like<R: Rng + ?Sized>(
    rng: &mut R,
    w: u32,
    h: u32,
    delete_p: f64,
    shortcuts: u32,
) -> Graph {
    assert!(w > 0 && h > 0, "city grid must be non-empty");
    assert!(
        (0.0..=1.0).contains(&delete_p),
        "delete_p must be a probability"
    );
    let n = w * h;
    // Enumerate grid8 edges once.
    let mut grid_edges: Vec<(NodeId, NodeId)> = Vec::new();
    for r in 0..h {
        for c in 0..w {
            let v = r * w + c;
            if c + 1 < w {
                grid_edges.push((v, v + 1));
            }
            if r + 1 < h {
                grid_edges.push((v, v + w));
                if c + 1 < w {
                    grid_edges.push((v, v + w + 1));
                }
                if c > 0 {
                    grid_edges.push((v, v + w - 1));
                }
            }
        }
    }
    // A uniformly random spanning tree of kept edges: shuffle, then grow a
    // forest greedily. Tree edges are immune to deletion.
    grid_edges.shuffle(rng);
    let mut forest = DisjointSets::new(n);
    let mut b = GraphBuilder::new(n);
    for &(x, y) in &grid_edges {
        // Short-circuit keeps the RNG stream: the deletion coin is only
        // flipped for non-tree edges.
        if forest.union(x, y) || !rng.gen_bool(delete_p) {
            b.edge(x, y);
        }
    }
    // Long-range shortcuts (bridges / transit). Self-pairs are re-drawn;
    // duplicates of existing edges are deduplicated by the builder.
    for _ in 0..shortcuts {
        if n < 2 {
            break;
        }
        let a = rng.gen_range(0..n);
        let mut c = rng.gen_range(0..n - 1);
        if c >= a {
            c += 1;
        }
        b.edge(a, c);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs_distances, shortest_path_len};
    use crate::components::connected_components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn grid4_structure() {
        let g = grid4(3, 2);
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(g.n_edges(), 7); // 2*2 horizontal + 3 vertical
        assert!(g.has_edge(0, 1) && g.has_edge(0, 3));
        assert!(!g.has_edge(0, 4)); // no diagonal
    }

    #[test]
    fn grid8_has_diagonals() {
        let g = grid8(3, 3);
        assert!(g.has_edge(0, 4)); // ↘ diagonal
        assert!(g.has_edge(2, 4)); // ↙ diagonal
        assert_eq!(g.degree(4), 8); // centre has all 8 neighbours
        assert_eq!(g.degree(0), 3);
        // Edge count for w=h=3 grid8: 2*(2*3) horizontal+vertical = 12, diagonals 2*4 = 8.
        assert_eq!(g.n_edges(), 20);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = complete(5);
        assert_eq!(g.n_edges(), 10);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(shortest_path_len(&g, a, b), 1);
                }
            }
        }
    }

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path(4).n_edges(), 3);
        assert_eq!(cycle(5).n_edges(), 5);
        assert_eq!(star(6).n_edges(), 5);
        assert_eq!(bfs_distances(&cycle(6), 0)[3], 3);
        assert_eq!(bfs_distances(&star(6), 3)[5], 2);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn partition_cliques_structure() {
        // Labels: two areas {0,1,2} and {3,4}.
        let g = partition_cliques(&[7, 7, 7, 9, 9]);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 2));
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(2, 3));
        let cc = connected_components(&g);
        assert_eq!(cc.n_components, 2);
    }

    #[test]
    fn partition_single_labels_gives_edgeless() {
        let g = partition_cliques(&[0, 1, 2, 3]);
        assert!(g.is_edgeless());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(erdos_renyi(&mut rng, 10, 0.0).is_edgeless());
        assert_eq!(erdos_renyi(&mut rng, 10, 1.0).n_edges(), 45);
    }

    #[test]
    fn erdos_renyi_density_close_to_p() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = erdos_renyi(&mut rng, 80, 0.3);
        let max = 80.0 * 79.0 / 2.0;
        let density = g.n_edges() as f64 / max;
        assert!((density - 0.3).abs() < 0.05, "density {density}");
    }

    #[test]
    fn random_with_density_exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = random_with_density(&mut rng, 50, 0.1);
        let expect = (0.1_f64 * (50.0 * 49.0 / 2.0)).floor() as usize;
        assert_eq!(g.n_edges(), expect);
        // Determinism under the same seed.
        let mut rng2 = SmallRng::seed_from_u64(13);
        let g2 = random_with_density(&mut rng2, 50, 0.1);
        assert_eq!(g, g2);
    }

    #[test]
    fn city_like_is_connected_and_deterministic() {
        let mut rng = SmallRng::seed_from_u64(99);
        let g = city_like(&mut rng, 30, 20, 0.4, 12);
        assert_eq!(g.n_nodes(), 600);
        let cc = connected_components(&g);
        assert_eq!(cc.n_components, 1, "spanning tree guarantees connectivity");
        // Aggressive deletion really thins the grid.
        assert!(g.n_edges() < grid8(30, 20).n_edges());
        // Determinism under the same seed.
        let mut rng2 = SmallRng::seed_from_u64(99);
        assert_eq!(g, city_like(&mut rng2, 30, 20, 0.4, 12));
    }

    #[test]
    fn city_like_extremes() {
        let mut rng = SmallRng::seed_from_u64(100);
        // delete_p = 1: only the spanning tree (and shortcuts) survive.
        let g = city_like(&mut rng, 10, 10, 1.0, 0);
        assert_eq!(g.n_edges(), 99);
        assert_eq!(connected_components(&g).n_components, 1);
        // delete_p = 0: full grid8 plus shortcuts.
        let g = city_like(&mut rng, 10, 10, 0.0, 5);
        assert!(g.n_edges() >= grid8(10, 10).n_edges());
        // Single node: no edges, no shortcut panic.
        let g = city_like(&mut rng, 1, 1, 0.5, 3);
        assert_eq!(g.n_nodes(), 1);
        assert!(g.is_edgeless());
    }

    #[test]
    fn random_with_density_bounds() {
        let mut rng = SmallRng::seed_from_u64(14);
        assert!(random_with_density(&mut rng, 20, 0.0).is_edgeless());
        assert_eq!(random_with_density(&mut rng, 20, 1.0).n_edges(), 190);
    }
}
