//! Property-based tests for the graph substrate.

use panda_graph::{
    bfs, components::connected_components, generators, graph::GraphBuilder, ComponentDistances,
    DistanceLookup, Graph, IndexBackend, INFINITE,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Arbitrary small graph: node count and an edge bitmask.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u32..30, any::<u64>(), any::<u64>()).prop_map(|(n, seed, _)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        generators::erdos_renyi(&mut rng, n, 0.2)
    })
}

/// Sparse random graph with several components of mixed sizes — including
/// edge-free (all-singleton) graphs when `p = 0`.
fn arb_sparse_graph() -> impl Strategy<Value = Graph> {
    (2u32..50, any::<u64>(), 0usize..3).prop_map(|(n, seed, pi)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        generators::erdos_renyi(&mut rng, n, [0.0, 0.05, 0.15][pi])
    })
}

proptest! {
    /// d_G satisfies the triangle inequality on every connected triple.
    #[test]
    fn bfs_distance_is_metric(g in arb_graph()) {
        let n = g.n_nodes();
        let dists: Vec<Vec<u32>> = (0..n).map(|v| bfs::bfs_distances(&g, v)).collect();
        for a in 0..n as usize {
            for b in 0..n as usize {
                // Symmetry.
                prop_assert_eq!(dists[a][b], dists[b][a]);
                // Identity of indiscernibles (one direction).
                if a == b { prop_assert_eq!(dists[a][b], 0); }
                for c in 0..n as usize {
                    let (ab, bc, ac) = (dists[a][b], dists[b][c], dists[a][c]);
                    if ab != INFINITE && bc != INFINITE {
                        prop_assert!(ac != INFINITE && ac <= ab + bc);
                    }
                }
            }
        }
    }

    /// N^k(s) is monotone in k and reaches the whole component.
    #[test]
    fn k_neighbors_monotone(g in arb_graph(), s in 0u32..30, k in 0u32..6) {
        let s = s % g.n_nodes();
        let nk = bfs::k_neighbors(&g, s, k);
        let nk1 = bfs::k_neighbors(&g, s, k + 1);
        prop_assert!(nk.iter().all(|v| nk1.contains(v)));
        prop_assert!(nk.contains(&s));
        let comp = bfs::k_neighbors(&g, s, u32::MAX);
        let cc = connected_components(&g);
        prop_assert_eq!(comp.len() as u32, cc.sizes()[cc.component_of(s) as usize]);
    }

    /// Components partition the nodes, and edges never cross components.
    #[test]
    fn components_partition(g in arb_graph()) {
        let cc = connected_components(&g);
        prop_assert_eq!(cc.sizes().iter().sum::<u32>(), g.n_nodes());
        for (a, b) in g.edges() {
            prop_assert!(cc.same_component(a, b));
        }
    }

    /// Distance finiteness agrees exactly with component membership.
    #[test]
    fn distance_finite_iff_same_component(g in arb_graph()) {
        let cc = connected_components(&g);
        for a in 0..g.n_nodes() {
            let d = bfs::bfs_distances(&g, a);
            for b in 0..g.n_nodes() {
                prop_assert_eq!(d[b as usize] != INFINITE, cc.same_component(a, b));
            }
        }
    }

    /// isolate_nodes really isolates, and removes nothing else.
    #[test]
    fn isolation_is_local(g in arb_graph(), pick in any::<u64>()) {
        let v = (pick % g.n_nodes() as u64) as u32;
        let iso = panda_graph::ops::isolate_nodes(&g, &[v]);
        prop_assert!(iso.is_isolated(v));
        for (a, b) in g.edges() {
            if a != v && b != v {
                prop_assert!(iso.has_edge(a, b));
            }
        }
        prop_assert_eq!(iso.n_edges(), g.n_edges() - g.degree(v));
    }

    /// Induced subgraph edges are exactly the original edges inside the set.
    #[test]
    fn induced_subgraph_correct(g in arb_graph(), mask in any::<u32>()) {
        let nodes: Vec<u32> = (0..g.n_nodes()).filter(|v| mask >> (v % 32) & 1 == 1).collect();
        if nodes.len() >= 2 {
            let (sub, map) = panda_graph::ops::induced_subgraph(&g, &nodes);
            for i in 0..sub.n_nodes() {
                for j in (i + 1)..sub.n_nodes() {
                    prop_assert_eq!(
                        sub.has_edge(i, j),
                        g.has_edge(map[i as usize], map[j as usize])
                    );
                }
            }
        }
    }

    /// Builder and incremental insertion agree.
    #[test]
    fn builder_matches_incremental(edges in prop::collection::vec((0u32..15, 0u32..15), 0..40)) {
        let clean: Vec<(u32, u32)> = edges.into_iter().filter(|(a, b)| a != b).collect();
        let mut b = GraphBuilder::new(15);
        b.edges(clean.iter().copied());
        let built = b.build();
        let mut inc = Graph::empty(15);
        for &(a, c) in &clean {
            inc.add_edge(a, c);
        }
        prop_assert_eq!(built, inc);
    }

    /// Distance-oracle exactness across backend splits. A tiny tabulation
    /// budget forces components above `⌊√budget⌋` nodes onto hub labels while
    /// smaller ones (singletons included) stay dense, so a single random
    /// graph exercises dense, hub-labelled, and threshold-straddling
    /// components at once. Every answer must equal a fresh BFS.
    #[test]
    fn oracle_distances_match_bfs(g in arb_sparse_graph(), budget in 1usize..200) {
        let idx = ComponentDistances::with_budgets(&g, budget, usize::MAX >> 8);
        let mut seen = [false; 3];
        for a in 0..g.n_nodes() {
            seen[match idx.backend(a) {
                IndexBackend::Dense => 0,
                IndexBackend::HubLabels => 1,
                IndexBackend::Unindexed => 2,
            }] = true;
            let fresh = bfs::bfs_distances(&g, a);
            for b in 0..g.n_nodes() {
                match idx.distance(a, b) {
                    DistanceLookup::Known(d) => prop_assert_eq!(d, fresh[b as usize]),
                    DistanceLookup::DifferentComponents => {
                        prop_assert_eq!(fresh[b as usize], INFINITE);
                    }
                    DistanceLookup::NotIndexed => {
                        prop_assert!(false, "oracle budget must cover small graphs");
                    }
                }
            }
        }
        prop_assert!(!seen[2], "every component must be indexed");
    }

    /// `row_into` agrees with fresh BFS rows on both backends, with entries
    /// positionally aligned to the sorted component membership.
    #[test]
    fn oracle_rows_match_bfs(g in arb_sparse_graph(), budget in 1usize..200) {
        let idx = ComponentDistances::with_budgets(&g, budget, usize::MAX >> 8);
        let mut row = Vec::new();
        for v in 0..g.n_nodes() {
            prop_assert!(idx.row_into(v, &mut row));
            let fresh = bfs::bfs_distances(&g, v);
            let members = idx.members_of(v);
            prop_assert_eq!(row.len(), members.len());
            for (&m, &d) in members.iter().zip(row.iter()) {
                prop_assert_eq!(u32::from(d), fresh[m as usize]);
            }
        }
    }

    /// Partition cliques: same label ⟺ adjacent (for groups of ≥ 2).
    #[test]
    fn partition_cliques_iff_same_label(labels in prop::collection::vec(0u32..5, 2..20)) {
        let g = generators::partition_cliques(&labels);
        for a in 0..labels.len() {
            for b in (a + 1)..labels.len() {
                prop_assert_eq!(
                    g.has_edge(a as u32, b as u32),
                    labels[a] == labels[b]
                );
            }
        }
    }
}
